//! Bounded-exhaustive interleaving exploration (the model checker).
//!
//! Theorem 3 claims **every** finite history of `Fgp` is opaque. For an
//! automaton-level ∀-claim the executable analogue is bounded-exhaustive
//! checking: enumerate *all* schedules of `n` deterministic clients up to
//! a depth and verify every produced history. Acceptance uses the fast
//! commit-order certifier and falls back to the exact witness search on
//! rejection, so every reported violation is definitive.
//!
//! # Prefix-sharing DFS
//!
//! Schedules of length `d` over `n` processes form the complete `n`-ary
//! tree of depth `d`; two schedules with a common prefix reach the *same*
//! intermediate state. The explorer therefore walks that tree depth-first
//! and extends the parent state by **one step per edge** instead of
//! replaying each of the `n^d` schedules from scratch:
//!
//! * the TM branches via [`tm_stm::SteppedTm::fork`] (all but a node's
//!   last child fork; the last child consumes the parent's instance, so a
//!   binary tree performs about one fork per node, not two);
//! * the client that stepped backtracks via an O(1)
//!   [`Client::mark`]/[`Client::restore`] snapshot;
//! * the commit-order certifier advances one event at a time and unwinds
//!   through [`IncrementalChecker::rollback`], so a rejection latches at
//!   the **shortest failing prefix** of the branch (reported per
//!   violation in [`Violation::fast_reject_at`]).
//!
//! Per-edge cost is thereby amortized O(1) TM/client/certifier work plus
//! one TM fork, versus the naive enumerator's O(depth) replay and
//! O(history) re-certification per schedule — the asymptotic gap grows
//! linearly with depth. The naive enumerator survives as
//! [`explore_schedules_naive`] for differential testing; both explorers
//! produce *identical* [`Exploration`] reports (same schedule counts,
//! fallback counts and violation lists, in the same lexicographic
//! order).
//!
//! # Parallel frontier
//!
//! With [`ExploreConfig::parallel`], the tree is split at a fixed depth:
//! every node at that depth becomes a subtree root carrying its own
//! forked TM, client snapshots and a compacted clone of the certifier,
//! and the roots are distributed over a thread pool (dynamic dealing —
//! idle workers claim the next root, so skewed subtrees balance). Roots
//! are processed in lexicographic order and merged in order, keeping the
//! report deterministic regardless of thread count.
//!
//! # Sleep-set pruning
//!
//! With [`ExploreConfig::sleep_sets`], schedules that differ only by
//! swapping adjacent **independent** steps are explored once. Two steps
//! are treated as independent exactly when both are operation steps
//! (read or write) by different processes on **different t-variables**
//! *and* the TM has opted into
//! [`tm_stm::SteppedTm::disjoint_var_ops_commute`] — an audited,
//! per-algorithm contract that such steps map TM states to the same
//! state in either order with the same responses. For TMs that keep
//! the conservative default (the blocking global-lock TM acquires the
//! lock on its first operation; SwissTM draws a fresh global
//! begin-timestamp), the explorer silently disables pruning instead of
//! risking a false certification. The remaining soundness argument:
//!
//! * `tryC` steps mutate global state (clocks, committed values,
//!   dooming) and are never classified independent;
//! * poll steps of blocking TMs depend on the global lock state and are
//!   likewise never independent;
//! * client state is per-process, so steps of different processes
//!   commute trivially;
//! * the certifier's verdict is invariant under swapping adjacent events
//!   of different processes on different variables when no commit
//!   intervenes (candidate slots are pruned per-variable against a
//!   committed-state sequence that only `tryC` extends).
//!
//! Swapping adjacent independent steps therefore maps each pruned
//! schedule to an explored one with an identical safety verdict: the
//! pruned exploration reports a violation iff the full exploration does.
//! Pruning changes the *number* of schedules visited (that is its
//! point), so differential tests comparing counts run with it disabled;
//! a separate test checks verdict equivalence with it enabled.
//!
//! # Digest dedup: collapsing the tree into a DAG
//!
//! Distinct schedule prefixes routinely reach the *same* configuration —
//! the same TM state, client cursors and certifier state (permuting two
//! processes' already-certified steps is the canonical case). The subtree
//! below such a configuration depends on nothing else, so with
//! [`ExploreConfig::dedup`] the explorer keys a seen set on
//!
//! `(TM state digest, client cursors, certifier digest, sleep set,
//!   remaining depth)`
//!
//! and, on a hit, *replays the memoized subtree summary* (schedule and
//! pruned-subtree counts) instead of walking the subtree again — turning
//! the schedule tree into a DAG. TM digests come from the per-algorithm
//! [`tm_stm::SteppedTm::state_digest`] canonicalization contract;
//! certifier digests from
//! [`tm_safety::IncrementalChecker::state_digest`]. For TMs without a
//! fingerprint the option silently disables (mirroring sleep sets).
//!
//! Two rules keep the reports **byte-identical** to the exhaustive
//! explorer's (differential-tested across the catalogue):
//!
//! * a subtree is memoized only when it certified *silently* — no
//!   violations and no exact-checker fallbacks. Those rare subtrees
//!   carry path-dependent report data (violation schedules/histories,
//!   exact re-checks of the full history), so every prefix re-explores
//!   them and reports its own copy;
//! * no lookup happens while a fast-certifier rejection is latched (all
//!   leaves below it fall back to the exact checker).
//!
//! Equal keys imply equal futures: the TM digest determines every future
//! response (the fingerprint contract), cursors determine every future
//! invocation, and the certifier digest determines every future verdict —
//! so the memoized counts transfer exactly, collision risk aside (which
//! is what the differential suite guards).
//!
//! # Source-set DPOR: equivalence-class pruning
//!
//! Most interleavings differ only by swaps of **independent** steps and
//! therefore carry the same verdict; the paper's quantitative results
//! are themselves stated per Mazurkiewicz equivalence class. With
//! [`ExploreConfig::dpor`] the explorer visits **one representative
//! schedule per class** instead of every member, using source-set
//! dynamic partial-order reduction (Flanagan–Godefroid backtrack sets
//! with Abdulla–Aronis–Jonsson–Sagonas source sets and sleep sets).
//!
//! **The independence relation.** Per-TM, via the conflict oracle
//! [`tm_stm::SteppedTm::step_footprint`]: before a step executes, the TM
//! declares the shared state it may touch — per-variable read/write
//! masks (including read-set revalidation and abort-time rollback or
//! lock-release sets), global-channel read/write bits (clocks, sequence
//! numbers, age counters, cross-process dooming), and whether the step
//! may complete a transaction now; the driver adds whether it begins
//! one. Two next-steps by different processes are independent iff their
//! footprints do not [`tm_stm::StepFootprint::conflicts`]. The oracle's
//! audited contract is that independent steps *commute*: either order
//! yields the same TM state and responses. The begin/end flags extend
//! commutation from states to **verdicts**: a swap of two interior op
//! steps preserves per-process event sequences, read values, and every
//! transaction's real-time precedence, so the opacity verdict of each
//! leaf history — and of every extension — is class-invariant. (A
//! transaction-*ending* step swapped with a transaction-*beginning* one
//! would reorder a completion past a start and could relax real-time
//! precedence, so such pairs are declared conflicting.) TMs that keep
//! the conservative default oracle conflict on every pair and soundly
//! degenerate to full exploration — the blocking global-lock TM does so
//! by audit, not by default.
//!
//! **The walk.** Each executed schedule carries vector clocks over the
//! conflict relation. At every node — leaves included, since at the
//! depth frontier the racing "second" step never executes — the walk
//! checks each process's next step against the trace for *races*:
//! conflicting earlier steps not already ordered before it. For each
//! race the walk ensures the backtrack set at the earlier step's node
//! intersects the race's **source set** (the initials of the reversed
//! continuation), inserting one member if not; each node then explores
//! exactly its backtrack set, seeded with a single process, under
//! SDPOR sleep sets. Soundness of the certified verdict: every schedule
//! of the full tree is reachable from an explored one by swapping
//! adjacent independent steps, each swap preserves the leaf verdict
//! (above), and the incremental certifier never accepts a violating
//! history — so `all_opaque` is preserved exactly, and every violation
//! DPOR reports is one the unreduced explorer reports verbatim.
//!
//! **Composition.** With [`ExploreConfig::dedup`], a memoized subtree
//! summary additionally stores the union of every footprint the subtree
//! queried or executed; a hit is replayed only when nothing in the
//! current trace conflicts with that union — otherwise the skipped walk
//! could owe race-reversal backtrack points to the prefix. (Subtree
//! *shape* is prefix-independent: race insertions into the subtree
//! depend only on its own trace, because trace indices put subtree
//! steps after every prefix step in the max-scan and happens-before
//! chains between subtree events cannot route through the prefix.) With
//! [`ExploreConfig::parallel`], the prefix tree up to the split depth is
//! enumerated exhaustively — a reduced prefix tree could owe reversals
//! across the boundary — and each root runs an independent source-set
//! walk from a fresh trace.
//!
//! # Optimal DPOR: wakeup trees
//!
//! Source sets still waste work: a backtrack process inserted by race
//! detection can be put to sleep by a *later*-explored sibling, and the
//! classic formulation only discovers that after starting the branch and
//! abandoning it (counted by `sleep_blocked_executions`). With
//! [`ExploreConfig::optimal_dpor`] each node instead carries a **wakeup
//! tree** (Abdulla–Aronis–Jonsson–Sagonas): an ordered tree of full
//! race-reversal *sequences*, inserted under a weak-initial sleep guard
//! and walked verbatim — the walk pops the first edge, executes it, and
//! hands the edge's subtree to the child, seeding a fresh branch only at
//! nodes whose tree is exhausted. The payoff is the optimality property:
//! the walk **never starts a schedule it abandons as redundant**
//! (`sleep_blocked_executions` is pinned at exactly zero by the
//! differential suite), and executes at most as many schedules as
//! source-set mode — strictly fewer from three processes up (169 vs 330
//! at 3 processes, depth 8, on the bench workload). At two processes the
//! counts coincide: every race there has a single initial, so sleep sets
//! alone already achieve one schedule per class.
//!
//! Two honest caveats, both consequences of measuring against *this*
//! engine rather than the paper's abstract setting. First, the classic
//! optimality theorem ("exactly one execution per Mazurkiewicz class")
//! assumes a static independence relation; our footprints are
//! state-dependent, so an inserted reversal can lose its justifying
//! conflict by the time it is replayed and is then dropped, asleep, at
//! pop time (see `engine::reduction`'s module docs) — executed schedules
//! stay
//! pairwise inequivalent (asserted via [`schedule_normal_form`]), but
//! the class count from [`mazurkiewicz_classes`] is a ceiling, not an
//! equality, at the bounded-depth frontier. Second, composition follows
//! source mode: dedup additionally keys on the pending wakeup tree's
//! digest and keeps the footprint replay guard; the parallel frontier
//! enumerates the prefix tree exhaustively and runs an independent
//! wakeup-tree walk per root, so reports stay deterministic and
//! byte-identical across thread counts.
//!
//! # The exploration kernel
//!
//! This explorer is one of two instantiations of the shared search
//! kernel in [`crate::engine`] (the other is the liveness checker,
//! [`mod@crate::livecheck`]): its `ScheduleSpace` implements the kernel's
//! [`SearchSpace`] contract (one stepper, client mark/restore, certifier
//! checkpoint/rollback, canonical configuration keys), TM branching runs
//! through the shared [`tm_stm::TmPool`], the seen sets are the kernel's
//! [`crate::engine::memo`] backends (worker-local or the 64-way
//! lock-striped shared table), the DPOR/sleep-set state lives in the
//! kernel's reduction layer, and the parallel frontier merges subtree
//! reports deterministically via [`crate::engine::frontier::distribute`].

use std::sync::Arc;

use tm_core::{Event, History, ProcessId};
use tm_safety::{check_opacity, Checkpoint, IncrementalChecker, Mode, SafetyVerdict};
use tm_stm::{BoxedTm, Outcome, StepFootprint, SteppedTm, TmPool};
use tm_telemetry::{Counter, Json, Telemetry, Timer};

use crate::engine::budget::{Budget, BudgetMeter};
use crate::engine::frontier;
use crate::engine::memo::{SeenSet, StripedTable};
use crate::engine::reduction::{self, Dpor, Feet, OptimalDpor, WakeupTree};
use crate::engine::space::{
    emit_trace, expand_child, step_process, SearchSpace, StepRecord, TraceWitness,
};
use crate::faults::{Fault, FaultConfig, FaultPlan, FaultState};
use crate::workload::{clients_digest, Client, ClientMark, ClientScript};

/// A definitive safety violation found during exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The schedule (process per step) that produced the history.
    pub schedule: Vec<ProcessId>,
    /// The offending history.
    pub history: History,
    /// Why it is not opaque.
    pub detail: String,
    /// Index of the event at which the commit-order certifier first
    /// rejected — the shortest failing prefix of this schedule's branch.
    pub fast_reject_at: usize,
    /// The concrete fault placements of this branch (`at_step` indexes
    /// into `schedule`, which carries process steps only). Empty for a
    /// fault-free run.
    pub faults: FaultPlan,
}

/// Outcome of an exploration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Exploration {
    /// Complete schedules replayed (leaves visited).
    pub schedules: usize,
    /// Histories that needed the exact checker (fast path rejected).
    pub exact_fallbacks: usize,
    /// Definitive opacity violations, in schedule-lexicographic order.
    pub violations: Vec<Violation>,
    /// Subtrees skipped by sleep-set pruning (0 unless enabled).
    pub pruned_subtrees: usize,
    /// Subtrees replayed from the digest seen set (0 unless enabled).
    pub dedup_hits: usize,
    /// Every executed schedule (process index per step), in exploration
    /// order. Populated only under
    /// [`ExploreConfig::with_schedule_log`] — an oracle/debugging aid
    /// for the optimality tests, empty otherwise.
    pub schedule_log: Vec<Vec<u8>>,
    /// `Some(reason)` when the run degraded into a **partial** report —
    /// an exploration [`Budget`] cap tripped or a frontier worker
    /// panicked. A partial report is a sound under-approximation: every
    /// violation it carries is real, but [`Exploration::all_opaque`] is
    /// *not* a certification (the unexplored remainder may violate).
    pub exhausted: Option<String>,
    /// Processes a `crash(p)` transition was exercised for (bitmask; 0
    /// for a fault-free run).
    pub crash_injected: u64,
    /// Processes a `parasite(p)` transition was exercised for (bitmask).
    pub parasite_injected: u64,
}

impl Exploration {
    /// Whether every explored history was opaque.
    pub fn all_opaque(&self) -> bool {
        self.violations.is_empty()
    }

    /// The *report* portion of the exploration — schedule count, exact
    /// fallback count and violations. Search diagnostics (pruned-subtree
    /// and dedup-hit counts) are excluded: two explorations "report
    /// identically" iff these match.
    pub fn report(&self) -> (usize, usize, &[Violation]) {
        (self.schedules, self.exact_fallbacks, &self.violations)
    }

    fn absorb(&mut self, other: Exploration) {
        self.schedules += other.schedules;
        self.exact_fallbacks += other.exact_fallbacks;
        self.violations.extend(other.violations);
        self.pruned_subtrees += other.pruned_subtrees;
        self.dedup_hits += other.dedup_hits;
        self.schedule_log.extend(other.schedule_log);
        if self.exhausted.is_none() {
            self.exhausted = other.exhausted;
        }
        self.crash_injected |= other.crash_injected;
        self.parasite_injected |= other.parasite_injected;
    }
}

/// Configuration for [`explore_with`].
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Schedule length to explore exhaustively.
    pub depth: usize,
    /// Distribute subtrees over a thread pool.
    pub parallel: bool,
    /// Prefix length at which the tree is split into parallel subtree
    /// roots; `None` picks the smallest prefix yielding at least eight
    /// roots per worker thread.
    pub split_depth: Option<usize>,
    /// Skip schedules differing only by swaps of adjacent independent
    /// steps (see the module docs for the soundness argument). Changes
    /// `schedules` counts, never verdicts. Takes effect only for TMs
    /// whose [`tm_stm::SteppedTm::disjoint_var_ops_commute`] contract
    /// holds; for the rest pruning is silently disabled.
    pub sleep_sets: bool,
    /// Collapse the schedule tree into a DAG via the digest seen set
    /// (see the module docs). Reports stay byte-identical; `schedules`
    /// still counts every leaf of the full tree. Takes effect only for
    /// TMs implementing [`tm_stm::SteppedTm::state_digest`]; for the
    /// rest dedup is silently disabled.
    pub dedup: bool,
    /// Source-set dynamic partial-order reduction (see the module docs):
    /// explore **one representative schedule per Mazurkiewicz
    /// equivalence class** of the independence relation declared by the
    /// TM's conflict oracle ([`tm_stm::SteppedTm::step_footprint`]).
    /// `schedules` then counts *executed* schedules — typically orders
    /// of magnitude below `n^depth` — while the violation verdict
    /// (`all_opaque`, and every violation actually reported) is
    /// preserved: each reported violation is a real explored schedule
    /// the unreduced explorer also reports. For TMs that keep the
    /// conservative default oracle, every step conflicts and the walk
    /// soundly degenerates to full exploration.
    pub dpor: bool,
    /// Optimal DPOR (see the module docs): replace `dpor`'s flat
    /// backtrack sets with **wakeup trees** — ordered trees of full
    /// race-reversal sequences, inserted under a weak-initial sleep
    /// guard. Same coverage and verdict guarantees as `dpor` (every
    /// reported violation is a real schedule the unreduced explorer also
    /// reports), but strictly fewer or equal executed schedules and —
    /// the optimality property — **zero sleep-blocked executions**: the
    /// walk never starts a schedule it abandons as redundant. Implies
    /// the `dpor` machinery; for TMs with the conservative default
    /// oracle it likewise degenerates to full exploration.
    pub optimal_dpor: bool,
    /// Record every executed schedule into
    /// [`Exploration::schedule_log`]. Disables digest dedup for the run
    /// (a replayed subtree summary cannot reproduce its schedules).
    pub record_schedules: bool,
    /// Share one sharded, lock-striped digest seen set across the
    /// parallel workers instead of per-worker tables: adds
    /// cross-subtree dedup hits at the price of lock traffic. Reports
    /// are byte-identical either way (memoized summaries are exact
    /// wherever they were computed); the per-worker default is kept
    /// because its diagnostics (`dedup_hits`) are run-to-run
    /// deterministic. No effect unless `dedup` and `parallel` are on.
    pub shared_dedup: bool,
    /// Fault quantification (see the module docs): with a non-trivial
    /// config, `crash(p)` / `parasite(p)` become scheduler-level
    /// transitions of the search, exhaustively explored like any process
    /// step. Each fault transition consumes one depth unit and leaves
    /// the TM untouched; every reported [`Violation`] carries the
    /// concrete [`FaultPlan`] its branch chose. With
    /// [`FaultConfig::none()`] (the default) reports are byte-identical
    /// to fault-free exploration.
    pub faults: FaultConfig,
    /// Resource caps ([`Budget`]): when a cap trips, the walk unwinds
    /// and the run returns a *partial* report with
    /// [`Exploration::exhausted`] set instead of running unbounded.
    /// Unlimited by default.
    pub budget: Budget,
    /// Observability handle (off by default — hooks are no-ops). The
    /// counters it accumulates are deterministic at any thread count;
    /// see the `tm_telemetry` module docs for the schema and contract.
    pub telemetry: Telemetry,
}

impl ExploreConfig {
    /// Exhaustive exploration to `depth`: parallel, no pruning — the
    /// drop-in semantics of [`explore_schedules`].
    pub fn new(depth: usize) -> Self {
        ExploreConfig {
            depth,
            parallel: true,
            split_depth: None,
            sleep_sets: false,
            dedup: false,
            dpor: false,
            optimal_dpor: false,
            record_schedules: false,
            shared_dedup: false,
            faults: FaultConfig::none(),
            budget: Budget::unlimited(),
            telemetry: Telemetry::off(),
        }
    }

    /// Disables the parallel frontier.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Enables sleep-set pruning.
    pub fn with_sleep_sets(mut self) -> Self {
        self.sleep_sets = true;
        self
    }

    /// Pins the parallel split depth.
    pub fn with_split_depth(mut self, split: usize) -> Self {
        self.split_depth = Some(split);
        self
    }

    /// Enables digest dedup (the cross-schedule seen set).
    pub fn with_dedup(mut self) -> Self {
        self.dedup = true;
        self
    }

    /// Enables source-set dynamic partial-order reduction.
    pub fn with_dpor(mut self) -> Self {
        self.dpor = true;
        self
    }

    /// Enables optimal DPOR (wakeup trees + sleep-set-aware scheduling).
    pub fn with_optimal_dpor(mut self) -> Self {
        self.optimal_dpor = true;
        self
    }

    /// Records executed schedules into [`Exploration::schedule_log`].
    pub fn with_schedule_log(mut self) -> Self {
        self.record_schedules = true;
        self
    }

    /// Shares the digest seen set across parallel workers (sharded).
    pub fn with_shared_dedup(mut self) -> Self {
        self.shared_dedup = true;
        self
    }

    /// Quantifies over crash/parasitic faults ([`FaultConfig`]).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Caps the run's resources ([`Budget`]); a tripped cap yields a
    /// partial report with [`Exploration::exhausted`] set.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a telemetry handle (counters, phase spans and — when the
    /// handle streams — NDJSON progress events).
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }
}

/// The safety explorer's instantiation of the kernel's [`SearchSpace`]:
/// a schedule-tree configuration — client cursors, the schedule path,
/// the growing history, and the incremental opacity certifier whose
/// verdict latches on rejection. The TM itself is threaded through the
/// walk separately (ownership moves along tree edges).
struct ScheduleSpace {
    clients: Vec<Client>,
    path: Vec<usize>,
    history: Vec<Event>,
    checker: IncrementalChecker,
    telemetry: Telemetry,
    /// Steps this space executed — a plain worker-local tally, flushed
    /// once per walk as [`tm_telemetry::Counter::WorkerSteps`].
    steps: u64,
    /// Record executed schedules at the leaves
    /// ([`ExploreConfig::record_schedules`]).
    log_schedules: bool,
    /// Crash/parasitic masks of the current branch. Mutated only along
    /// fault edges (saved/restored by the walker, not via [`Self::Mark`]
    /// — process steps never touch it).
    fstate: FaultState,
    /// The fault transitions taken along the current branch, in order —
    /// the concrete [`FaultPlan`] a violation on this branch reports.
    fault_log: Vec<Fault>,
}

/// Everything one [`ScheduleSpace`] step mutates, for O(1) backtrack.
struct ScheduleMark {
    checkpoint: Checkpoint,
    history_len: usize,
    client: ClientMark,
}

impl ScheduleSpace {
    fn new(
        scripts: &[ClientScript],
        depth: usize,
        telemetry: Telemetry,
        log_schedules: bool,
    ) -> Self {
        ScheduleSpace {
            clients: scripts.iter().cloned().map(Client::new).collect(),
            path: Vec::with_capacity(depth),
            history: Vec::with_capacity(depth * 2),
            checker: IncrementalChecker::new(Mode::Opacity),
            telemetry,
            steps: 0,
            log_schedules,
            fstate: FaultState::none(),
            fault_log: Vec::new(),
        }
    }

    /// A self-contained copy for a parallel subtree root, with the
    /// certifier's undo log compacted away (roots never unwind past
    /// their own split point).
    fn subtree_root(&self) -> Self {
        let mut checker = self.checker.clone();
        checker.compact();
        ScheduleSpace {
            clients: self.clients.clone(),
            path: self.path.clone(),
            history: self.history.clone(),
            checker,
            telemetry: self.telemetry.clone(),
            steps: 0,
            log_schedules: self.log_schedules,
            fstate: self.fstate,
            fault_log: self.fault_log.clone(),
        }
    }
}

impl SearchSpace for ScheduleSpace {
    type Mark = ScheduleMark;

    fn width(&self) -> usize {
        self.clients.len()
    }

    fn mark(&mut self, k: usize) -> ScheduleMark {
        ScheduleMark {
            checkpoint: self.checker.checkpoint(),
            history_len: self.history.len(),
            client: self.clients[k].mark(),
        }
    }

    fn step(&mut self, tm: &mut BoxedTm, k: usize) -> StepRecord {
        self.steps += 1;
        let started = self.telemetry.timer_start();
        self.path.push(k);
        let parasitic = self.fstate.parasitic & (1 << k) != 0;
        let record = step_process(tm, &mut self.clients, k, parasitic, &mut self.history);
        self.telemetry.timer_stop(Timer::Step, started);
        // Feed the certifier from the record; its verdict latches on
        // rejection, so pushes after a reject are deliberate no-ops.
        match record {
            StepRecord::Polled(Some(resp)) => {
                let _ = self.checker.push(Event::response(ProcessId(k), resp));
            }
            StepRecord::Polled(None) => {}
            StepRecord::Call(inv, resp) => {
                // Fused invocation+response certification: one record
                // lookup and one undo entry, observationally identical
                // to two `push` calls.
                let _ = self.checker.push_call(ProcessId(k), inv, resp);
            }
            StepRecord::Withheld(inv) => {
                let _ = self.checker.push(Event::invocation(ProcessId(k), inv));
            }
        }
        record
    }

    fn rewind(&mut self, k: usize, mark: ScheduleMark) {
        self.path.pop();
        self.history.truncate(mark.history_len);
        self.checker.rollback(mark.checkpoint);
        self.clients[k].restore(mark.client);
    }

    fn config_key(&self, tm: &BoxedTm) -> Option<(u64, u64)> {
        tm.state_digest()
            .map(|d| (d, clients_digest(&self.clients)))
    }
}

/// Certify a completed schedule exactly as the naive enumerator does:
/// count it, and when the (latched) fast certifier rejected somewhere on
/// this branch, fall back to the exact checker on the full history.
fn certify_leaf(space: &ScheduleSpace, out: &mut Exploration) {
    out.schedules += 1;
    if space.log_schedules {
        out.schedule_log
            .push(space.path.iter().map(|&k| k as u8).collect());
    }
    let Some(reject) = space.checker.violation() else {
        return;
    };
    let (path, history) = (&space.path, &space.history);
    out.exact_fallbacks += 1;
    let fast_reject_at = reject.position;
    let mut full = History::new();
    for &event in history {
        full.push(event);
    }
    match check_opacity(&full) {
        Ok(SafetyVerdict::Satisfied { .. }) => {}
        Ok(SafetyVerdict::Violated) => {
            out.violations.push(Violation {
                schedule: path.iter().copied().map(ProcessId).collect(),
                history: full,
                detail: "no legal sequential witness exists".to_string(),
                fast_reject_at,
                faults: FaultPlan::from_faults(space.fault_log.clone()),
            });
        }
        Err(e) => {
            out.violations.push(Violation {
                schedule: path.iter().copied().map(ProcessId).collect(),
                history: full,
                detail: format!("exact check infeasible: {e}"),
                fast_reject_at,
                faults: FaultPlan::from_faults(space.fault_log.clone()),
            });
        }
    }
}

/// Key of the digest seen set: one explored configuration of the search,
/// at one remaining depth (memoized subtree summaries only transfer
/// between identical residual searches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MemoKey {
    tm: u64,
    clients: u64,
    checker: u64,
    sleep: u64,
    remaining: u32,
    /// Structural digest of the node's *pending* wakeup tree (optimal
    /// mode only; 0 otherwise): a memoized summary transfers only
    /// between nodes owing the same reversal branches.
    wut: u64,
    /// [`FaultState::key`] of the branch (0 in fault-free runs): a
    /// summary never transfers between distinct crash/parasitic masks —
    /// the residual searches differ in both branching and stepping.
    faults: u64,
}

/// The memoized summary of a silently-certified subtree.
#[derive(Debug, Clone, Copy)]
struct MemoDelta {
    schedules: usize,
    pruned_subtrees: usize,
    /// Union of every footprint the subtree queried or executed — the
    /// DPOR-mode replay guard (see the module docs). Unused (empty)
    /// without DPOR.
    agg: StepFootprint,
}

/// The digest seen set of one walk: the kernel's backend-agnostic table
/// (worker-local, or a handle onto the 64-way lock-striped shared table
/// behind [`ExploreConfig::shared_dedup`]).
type Memo = SeenSet<MemoKey, MemoDelta>;

/// The per-path mutable state of the depth-first walk. The TM is owned
/// and consumed per call (the last child of a node steals the parent's
/// instance); everything else unwinds in place through the
/// [`ScheduleSpace`] marks.
struct Walk<'a> {
    /// The kernel search space: clients, path, history, certifier.
    space: &'a mut ScheduleSpace,
    out: &'a mut Exploration,
    /// The shared fork/refork recycling pool ([`tm_stm::TmPool`]): left
    /// non-recycling for TMs without the `refork_from` fast path
    /// (probed once per exploration), so they pay no per-edge
    /// pop/refork-attempt overhead.
    pool: &'a mut TmPool,
    /// The digest seen set (disabled during the parallel split walk,
    /// whose "leaves" collect subtree roots rather than certifying).
    memo: &'a mut Memo,
    /// Worker-local telemetry tallies: plain integer increments on the
    /// hot path, one atomic add each at flush.
    tally: Tally,
    /// The run's fault quantification ([`ExploreConfig::faults`]).
    faults: FaultConfig,
    /// The run's shared budget meter: one atomic check per tree node,
    /// short-circuited to a load-free `true` when unlimited.
    meter: &'a BudgetMeter,
}

/// The per-walk telemetry tallies (see [`Walk::tally`]).
#[derive(Default)]
struct Tally {
    /// Seen-set lookups that did not replay a summary (true misses plus
    /// DPOR-mode hits blocked by the footprint replay guard).
    memo_misses: u64,
    /// Reversible races the source-set analysis detected.
    dpor_races: u64,
    /// Reversal sequences inserted into wakeup trees (optimal mode).
    wakeup_inserts: u64,
    /// Reversals proved covered and dropped (optimal mode): rejected at
    /// insertion by the weak-initial sleep guard, subsumed by a pending
    /// branch, or — because footprints are state-dependent — popped
    /// with an asleep head and discarded before executing anything.
    wakeup_redundant: u64,
    /// Executions the sleep discipline started and then abandoned:
    /// source mode's suppressed backtrack branches. Structurally zero
    /// in optimal mode — the wakeup-tree walk drops covered branches
    /// before their first step — which is the optimality property the
    /// differential suite pins.
    sleep_blocked: u64,
    /// Fault transitions (`crash(p)` / `parasite(p)`) the walk took.
    faults_injected: u64,
}

impl Tally {
    fn flush(&self, telemetry: &Telemetry) {
        telemetry.add(Counter::MemoMisses, self.memo_misses);
        telemetry.add(Counter::DporRaces, self.dpor_races);
        telemetry.add(Counter::WakeupInserts, self.wakeup_inserts);
        telemetry.add(Counter::WakeupRedundant, self.wakeup_redundant);
        telemetry.add(Counter::SleepBlockedExecutions, self.sleep_blocked);
        telemetry.add(Counter::FaultsInjected, self.faults_injected);
    }
}

/// Depth-first walk of the schedule tree below the current path,
/// invoking `leaf` at depth `remaining == 0` with ownership of the TM.
/// Returns the TM box for recycling (`None` if a leaf kept it).
///
/// `sleep` is the sleep set: processes whose next step is provably
/// covered by an already-explored sibling subtree. When `sleep_sets` is
/// false it is always empty.
///
/// With faults enabled ([`Walk::faults`]) each node additionally
/// branches on every `crash(p)` / `parasite(p)` the config still allows:
/// fault edges consume one depth unit, leave the TM and the schedule
/// path untouched, and reset the child sleep set (their footprint is
/// conservatively global — no sibling subtree covers anything across a
/// fault). Crashed processes drop out of the eligible set, and the
/// [`FaultState`] masks fold into the memo key so summaries never leak
/// across fault placements. With `FaultConfig::none()` the node shape —
/// including which child consumes the parent's box — is exactly the
/// fault-free walk, which is what keeps those reports byte-identical.
fn walk_tree<L>(
    walk: &mut Walk<'_>,
    mut tm: BoxedTm,
    remaining: usize,
    mut sleep: u64,
    sleep_sets: bool,
    leaf: &mut L,
) -> Option<BoxedTm>
where
    L: FnMut(&mut Walk<'_>, BoxedTm, u64) -> Option<BoxedTm>,
{
    // Budget gate before any expansion: a tripped meter unwinds the
    // whole walk into a partial report ([`Exploration::exhausted`]).
    if !walk.meter.note_state() {
        return Some(tm);
    }
    if remaining == 0 {
        return leaf(walk, tm, sleep);
    }
    // Digest dedup: replay a memoized subtree summary, or note the entry
    // counters so this subtree can be memoized on the way out. No lookup
    // while a rejection is latched (every leaf below falls back to the
    // exact checker on the full, path-dependent history).
    let memo_note = if walk.memo.enabled() && walk.space.checker.violation().is_none() {
        let (tm_digest, clients) = walk
            .space
            .config_key(&tm)
            .expect("dedup runs only for fingerprinting TMs");
        let key = MemoKey {
            tm: tm_digest,
            clients,
            checker: walk.space.checker.state_digest(),
            sleep,
            remaining: remaining as u32,
            wut: 0,
            faults: walk.space.fstate.key(),
        };
        if let Some(delta) = walk.memo.get(&key) {
            walk.out.schedules += delta.schedules;
            walk.out.pruned_subtrees += delta.pruned_subtrees;
            walk.out.dedup_hits += 1;
            return Some(tm);
        }
        walk.tally.memo_misses += 1;
        Some((
            key,
            walk.out.schedules,
            walk.out.exact_fallbacks,
            walk.out.violations.len(),
            walk.out.pruned_subtrees,
        ))
    } else {
        None
    };
    let n = walk.space.width();
    walk.out.pruned_subtrees += sleep.count_ones() as usize;
    // Only materialize footprints when pruning is on: the array init is
    // measurable in the no-pruning hot path.
    let feet: Option<Feet> = if sleep_sets {
        Some(reduction::sleep_feet(&tm, &walk.space.clients))
    } else {
        None
    };
    // The fault transitions available at this node, in canonical order
    // (crashes ascending, then parasitic turns ascending) — empty in
    // fault-free runs, so the node shape below degenerates exactly to
    // the fault-free walk.
    let crashed = walk.space.fstate.crashed;
    let mut fault_edges: Vec<Fault> = Vec::new();
    if walk.faults.enabled() {
        let at_step = walk.space.path.len();
        for k in 0..n {
            if walk.space.fstate.can_crash(&walk.faults, k) {
                let process = ProcessId(k);
                fault_edges.push(Fault::Crash { process, at_step });
            }
        }
        for k in 0..n {
            if walk.space.fstate.can_parasite(&walk.faults, k) {
                let process = ProcessId(k);
                fault_edges.push(Fault::Parasitic { process, at_step });
            }
        }
    }
    let last = (0..n)
        .rev()
        .find(|k| sleep & (1 << k) == 0 && crashed & (1 << k) == 0)
        .expect("a live step is always possible");
    // With fault edges pending, every process child forks and the *last
    // fault edge* consumes the parent's box instead.
    let consume_last = fault_edges.is_empty();
    for k in 0..n {
        if sleep & (1 << k) != 0 || crashed & (1 << k) != 0 || (consume_last && k == last) {
            continue;
        }
        let mark = walk.space.mark(k);
        let (child, _) = expand_child(walk.space, walk.pool, &tm, k);
        let child_sleep = feet
            .as_ref()
            .map_or(0, |f| reduction::filtered_sleep(sleep, f, k, n));
        let recycled = walk_tree(walk, child, remaining - 1, child_sleep, sleep_sets, leaf);
        if let Some(recycled) = recycled {
            walk.pool.put_back(recycled);
        }
        walk.space.rewind(k, mark);
        sleep |= 1 << k;
    }
    let recycled = if consume_last {
        // The last child consumes the parent's TM instance: no fork.
        // (Deferring this edge's rollback to an ancestor is semantically
        // sound but measurably slower — it trades the undo log's tight
        // LIFO locality for large cold sweeps.)
        let mark = walk.space.mark(last);
        let child_sleep = feet
            .as_ref()
            .map_or(0, |f| reduction::filtered_sleep(sleep, f, last, n));
        walk.space.step(&mut tm, last);
        let recycled = walk_tree(walk, tm, remaining - 1, child_sleep, sleep_sets, leaf);
        walk.space.rewind(last, mark);
        recycled
    } else {
        // Fault branches. A fault edge mutates only the fault state and
        // the per-branch fault log: the TM is untouched (a crash is the
        // *absence* of future steps; a parasitic turn reroutes the
        // client at its next `tryC`), so the box forks unchanged. The
        // child sleep set resets to zero — the fault's footprint is
        // conservatively global.
        let count = fault_edges.len();
        let mut slot = Some(tm);
        for (i, fault) in fault_edges.into_iter().enumerate() {
            let saved = walk.space.fstate;
            let k = fault.process().0;
            match fault {
                Fault::Crash { .. } => {
                    walk.space.fstate.crash(k);
                    walk.out.crash_injected |= 1 << k;
                }
                Fault::Parasitic { .. } => {
                    walk.space.fstate.parasite(k);
                    walk.out.parasite_injected |= 1 << k;
                }
            }
            walk.tally.faults_injected += 1;
            walk.space.fault_log.push(fault);
            let is_last = i + 1 == count;
            let child = if is_last {
                slot.take().expect("the last fault edge consumes the box")
            } else {
                walk.pool
                    .fork_child(slot.as_ref().expect("box still owned"))
            };
            let recycled = walk_tree(walk, child, remaining - 1, 0, sleep_sets, leaf);
            if let Some(recycled) = recycled {
                if is_last {
                    slot = Some(recycled);
                } else {
                    walk.pool.put_back(recycled);
                }
            }
            walk.space.fault_log.pop();
            walk.space.fstate = saved;
        }
        slot
    };
    // Memoize only silently-certified subtrees: violations and exact
    // fallbacks carry path-dependent report data that must be recomputed
    // per prefix (see the module docs) — and never a subtree truncated
    // by a tripped budget (its summary would under-count on replay).
    if let Some((key, schedules, fallbacks, violations, pruned)) = memo_note {
        if walk.out.exact_fallbacks == fallbacks
            && walk.out.violations.len() == violations
            && walk.meter.within()
        {
            walk.memo.insert(
                key,
                MemoDelta {
                    schedules: walk.out.schedules - schedules,
                    pruned_subtrees: walk.out.pruned_subtrees - pruned,
                    agg: StepFootprint::local(),
                },
            );
        }
    }
    recycled
}

/// Source-set DPOR walk (see the module docs): at each node, explore
/// only the processes the race analysis proves necessary, starting from
/// one arbitrary representative. Returns the TM box for recycling and
/// the union of every footprint the subtree queried or executed (the
/// memo replay guard).
fn walk_dpor(
    walk: &mut Walk<'_>,
    dpor: &mut Dpor,
    tm: BoxedTm,
    remaining: usize,
    mut sleep: u64,
    parent_feet: Option<&[StepFootprint; 64]>,
) -> (BoxedTm, StepFootprint) {
    if !walk.meter.note_state() {
        return (tm, StepFootprint::local());
    }
    let n = walk.space.width();
    let mut feet = [StepFootprint::local(); 64];
    let mut agg = StepFootprint::local();
    for (q, foot) in feet.iter_mut().enumerate().take(n) {
        *foot = reduction::next_footprint(&tm, &walk.space.clients, q);
        agg.merge(foot);
    }
    // Race detection at *every* node for *every* process's next step
    // (Flanagan–Godefroid style), leaves included: at the depth frontier
    // the conflicting "second" step never executes, so detection keyed
    // on executed steps alone would miss reversals that only differ in
    // the final steps of the bounded window. Incremental: a process that
    // did not just step and whose footprint is unchanged since the
    // parent node has all its races against older steps already ensured
    // there (its clock is unchanged too), so only the newest trace step
    // needs checking — full rescans happen exactly for the process that
    // stepped or on a state-induced footprint change.
    let len = dpor.steps.len();
    if len > 0 {
        let last_proc = dpor.steps[len - 1].proc as usize;
        for (q, foot) in feet.iter().enumerate().take(n) {
            let full = q == last_proc || parent_feet.is_none_or(|pf| pf[q] != *foot);
            dpor.detect_races_from(q, foot, if full { 0 } else { len - 1 });
        }
    }
    if remaining == 0 {
        certify_leaf(walk.space, walk.out);
        walk.meter.note_schedule();
        return (tm, agg);
    }
    // Digest dedup, DPOR flavour: a stored subtree summary may be
    // replayed only when nothing in the current trace conflicts with
    // anything the stored subtree touched — otherwise the skipped walk
    // could owe race-reversal backtrack points to the prefix (see the
    // module docs).
    let memo_note = if walk.memo.enabled() && walk.space.checker.violation().is_none() {
        let (tm_digest, clients) = walk
            .space
            .config_key(&tm)
            .expect("dedup runs only for fingerprinting TMs");
        let key = MemoKey {
            tm: tm_digest,
            clients,
            checker: walk.space.checker.state_digest(),
            sleep,
            remaining: remaining as u32,
            wut: 0,
            faults: walk.space.fstate.key(),
        };
        if let Some(delta) = walk.memo.get(&key) {
            if dpor.steps.iter().all(|s| !s.foot.conflicts(&delta.agg)) {
                walk.out.schedules += delta.schedules;
                walk.out.pruned_subtrees += delta.pruned_subtrees;
                walk.out.dedup_hits += 1;
                return (tm, delta.agg);
            }
        }
        walk.tally.memo_misses += 1;
        Some((
            key,
            walk.out.schedules,
            walk.out.exact_fallbacks,
            walk.out.violations.len(),
            walk.out.pruned_subtrees,
        ))
    } else {
        None
    };
    let depth = dpor.steps.len();
    debug_assert_eq!(dpor.backtrack.len(), depth);
    dpor.backtrack.push(0);
    // Seed with the first process the sleep set does not prove covered;
    // race detection grows the set from there. A fully-asleep node is
    // entirely covered by explored siblings.
    if let Some(first) = (0..n).find(|q| sleep & (1 << q) == 0) {
        dpor.backtrack[depth] |= 1 << first;
    }
    let mut explored = 0u64;
    loop {
        let avail = dpor.backtrack[depth] & !sleep;
        if avail == 0 {
            break;
        }
        let k = avail.trailing_zeros() as usize;
        explored |= 1 << k;
        let mark = walk.space.mark(k);
        let (child, _) = expand_child(walk.space, walk.pool, &tm, k);
        dpor.push(k, feet[k]);
        // SDPOR sleep inheritance: a sibling stays asleep only while its
        // next step is independent of the step just taken.
        let mut child_sleep = 0u64;
        for q in 0..n {
            if sleep & (1 << q) != 0 && !feet[q].conflicts(&feet[k]) {
                child_sleep |= 1 << q;
            }
        }
        let (recycled, child_agg) =
            walk_dpor(walk, dpor, child, remaining - 1, child_sleep, Some(&feet));
        agg.merge(&child_agg);
        walk.pool.put_back(recycled);
        dpor.pop();
        walk.space.rewind(k, mark);
        sleep |= 1 << k; // explored: its subtree covers it for the siblings
    }
    // Backtrack bits the sleep set suppressed: branches race detection
    // demanded that never ran. Each is an execution classic sleep-set
    // DPOR starts and abandons as redundant — the waste wakeup trees
    // eliminate (optimal mode keeps this tally at exactly zero).
    dpor.blocked += u64::from((dpor.backtrack[depth] & !explored).count_ones());
    dpor.backtrack.pop();
    if let Some((key, schedules, fallbacks, violations, pruned)) = memo_note {
        if walk.out.exact_fallbacks == fallbacks
            && walk.out.violations.len() == violations
            && walk.meter.within()
        {
            walk.memo.insert(
                key,
                MemoDelta {
                    schedules: walk.out.schedules - schedules,
                    pruned_subtrees: walk.out.pruned_subtrees - pruned,
                    agg,
                },
            );
        }
    }
    (tm, agg)
}

/// Optimal-DPOR walk (see the module docs): at each node, explore
/// exactly the branches of its wakeup tree — full reversal sequences
/// race detection inserted, minus those the weak-initial sleep guard
/// proved covered — seeding one free representative only when the tree
/// is empty. `wut` is the pending subtree the parent's popped edge
/// handed down. Returns the TM box for recycling and the footprint
/// union for the memo replay guard, exactly like [`walk_dpor`].
fn walk_optimal(
    walk: &mut Walk<'_>,
    opt: &mut OptimalDpor,
    tm: BoxedTm,
    remaining: usize,
    mut sleep: u64,
    wut: WakeupTree,
    parent_feet: Option<&[StepFootprint; 64]>,
) -> (BoxedTm, StepFootprint) {
    if !walk.meter.note_state() {
        return (tm, StepFootprint::local());
    }
    let n = walk.space.width();
    let mut feet = [StepFootprint::local(); 64];
    let mut agg = StepFootprint::local();
    for (q, foot) in feet.iter_mut().enumerate().take(n) {
        *foot = reduction::next_footprint(&tm, &walk.space.clients, q);
        agg.merge(foot);
    }
    // Race detection at every node for every process's next step, under
    // the same incremental rescan discipline as [`walk_dpor`]. Reversal
    // sequences insert into *ancestor* nodes' wakeup trees (this node's
    // own entry is pushed below, after detection).
    let len = opt.core.steps.len();
    if len > 0 {
        let last_proc = opt.core.steps[len - 1].proc as usize;
        for (q, foot) in feet.iter().enumerate().take(n) {
            let full = q == last_proc || parent_feet.is_none_or(|pf| pf[q] != *foot);
            opt.detect_races(q, foot, if full { 0 } else { len - 1 });
        }
    }
    if remaining == 0 {
        certify_leaf(walk.space, walk.out);
        walk.meter.note_schedule();
        return (tm, agg);
    }
    // Digest dedup, optimal flavour: the replay guard of [`walk_dpor`]
    // plus the pending-tree digest in the key — a summary transfers only
    // between nodes owing identical reversal branches.
    let memo_note = if walk.memo.enabled() && walk.space.checker.violation().is_none() {
        let (tm_digest, clients) = walk
            .space
            .config_key(&tm)
            .expect("dedup runs only for fingerprinting TMs");
        let key = MemoKey {
            tm: tm_digest,
            clients,
            checker: walk.space.checker.state_digest(),
            sleep,
            remaining: remaining as u32,
            wut: wut.digest(),
            faults: walk.space.fstate.key(),
        };
        if let Some(delta) = walk.memo.get(&key) {
            if opt.core.steps.iter().all(|s| !s.foot.conflicts(&delta.agg)) {
                walk.out.schedules += delta.schedules;
                walk.out.pruned_subtrees += delta.pruned_subtrees;
                walk.out.dedup_hits += 1;
                return (tm, delta.agg);
            }
        }
        walk.tally.memo_misses += 1;
        Some((
            key,
            walk.out.schedules,
            walk.out.exact_fallbacks,
            walk.out.violations.len(),
            walk.out.pruned_subtrees,
        ))
    } else {
        None
    };
    let depth = opt.core.steps.len();
    opt.push_node(sleep, wut, &feet[..n]);
    // Free seeding: only a node no pending reversal targets picks an
    // arbitrary first representative. A node entered with a non-empty
    // pending tree explores exactly those branches.
    if opt.wut_is_empty(depth) {
        if let Some(first) = (0..n).find(|q| sleep & (1 << q) == 0) {
            opt.seed(
                depth,
                u8::try_from(first).expect("≤ 64 processes"),
                feet[first],
            );
        }
    }
    while let Some(edge) = opt.pop_edge(depth) {
        let k = edge.proc as usize;
        if sleep & (1 << k) != 0 {
            // Late-detected redundancy. Footprints are state-dependent,
            // so a reversal inserted from one execution context can
            // carry a conflict (say, a `TryCommit` about to hit a
            // locked word) that has dissolved by the time the walk
            // replays the branch in the node's own context. Sleep
            // inheritance re-checks independence against the *actual*
            // footprints on this path, so an asleep head proves an
            // already-explored sibling subtree covers the whole branch,
            // sub-tree included. Drop it before executing anything: the
            // schedule never starts, so this is a redundant reversal,
            // not a sleep-blocked execution.
            opt.redundant += 1;
            continue;
        }
        let mark = walk.space.mark(k);
        let (child, _) = expand_child(walk.space, walk.pool, &tm, k);
        opt.core.push(k, feet[k]);
        // SDPOR sleep inheritance, exactly as in [`walk_dpor`].
        let mut child_sleep = 0u64;
        for q in 0..n {
            if sleep & (1 << q) != 0 && !feet[q].conflicts(&feet[k]) {
                child_sleep |= 1 << q;
            }
        }
        let (recycled, child_agg) = walk_optimal(
            walk,
            opt,
            child,
            remaining - 1,
            child_sleep,
            edge.sub,
            Some(&feet),
        );
        agg.merge(&child_agg);
        walk.pool.put_back(recycled);
        opt.core.pop();
        walk.space.rewind(k, mark);
        opt.sleep_child(depth, k);
        sleep |= 1 << k;
    }
    opt.pop_node();
    if let Some((key, schedules, fallbacks, violations, pruned)) = memo_note {
        if walk.out.exact_fallbacks == fallbacks
            && walk.out.violations.len() == violations
            && walk.meter.within()
        {
            walk.memo.insert(
                key,
                MemoDelta {
                    schedules: walk.out.schedules - schedules,
                    pruned_subtrees: walk.out.pruned_subtrees - pruned,
                    agg,
                },
            );
        }
    }
    (tm, agg)
}

/// A node at the parallel split depth, carrying everything a worker
/// needs to explore its subtree independently.
struct SubtreeRoot {
    tm: BoxedTm,
    space: ScheduleSpace,
    sleep: u64,
}

/// Explores every schedule of length `config.depth` over `scripts.len()`
/// processes against TMs built by `factory` (called once; the tree
/// branches via [`tm_stm::SteppedTm::fork`]), checking opacity of every
/// produced history — and, because the certifier is incremental and
/// eager, of every prefix.
///
/// # Panics
///
/// Panics if `scripts` is empty, has more than 64 entries, or does not
/// match the factory's process count.
pub fn explore_with<F>(factory: F, scripts: &[ClientScript], config: &ExploreConfig) -> Exploration
where
    F: Fn() -> BoxedTm,
{
    let n = scripts.len();
    assert!(n > 0, "need at least one process");
    assert!(n <= 64, "sleep sets are a u64 bitmask");
    let tm = factory();
    assert_eq!(tm.process_count(), n, "factory must match scripts");
    let telemetry = config.telemetry.clone();
    let tm_name = tm.name();
    telemetry.event(
        "run_start",
        &[
            ("engine", Json::str("explore")),
            ("tm", Json::str(tm_name)),
            ("depth", Json::Int(config.depth as i64)),
            ("processes", Json::Int(n as i64)),
        ],
    );
    // Sleep sets are sound only for TMs whose disjoint-variable
    // operations provably commute (an audited, opt-in trait contract);
    // for the rest, pruning silently disables rather than risking a
    // false certification.
    let sleep_sets = config.sleep_sets && tm.disjoint_var_ops_commute();
    // Probe refork support once ([`TmPool::for_tm`]): TMs without it
    // keep the spare pool empty rather than paying a failed dynamic
    // refork per tree edge.
    let pool = TmPool::for_tm(&tm).instrument(&telemetry);
    // Digest dedup silently disables for TMs without a fingerprint,
    // mirroring the sleep-set probe above — and under schedule logging,
    // whose replayed summaries could not reproduce their schedules.
    let dedup = config.dedup && !config.record_schedules && tm.state_digest().is_some();
    // The run's budget meter, shared by every worker. Its verdict is
    // read once at the end: a tripped cap makes the report partial.
    let meter = BudgetMeter::new(config.budget);

    // Fault quantification routes DPOR requests to the exhaustive walk:
    // the only sound footprint for a `crash(p)` / `parasite(p)`
    // transition is the global one (a crash reshapes every process's
    // future), under which the race analysis would demand every
    // reversal anyway — so the kernel takes the honest exhaustive walk
    // instead of a vacuous reduction. Sleep sets stay on where the TM
    // admits them: fault edges are never pruned and clear the child
    // sleep set, so the pruning refines only process-step pairs.
    let fault_mode = config.faults.enabled();
    let out = if config.optimal_dpor && !fault_mode {
        // Optimal DPOR: wakeup trees over the same parallel-split
        // strategy as source sets below (exhaustive prefix tree, one
        // independent walk per root with a fresh trace).
        let n = scripts.len();
        explore_split(
            tm,
            pool,
            scripts,
            config,
            SplitMode {
                dedup,
                split_sleep_sets: false,
            },
            &meter,
            move |walk, tm, remaining, _sleep| {
                let mut opt = OptimalDpor::new(n);
                walk_optimal(
                    walk,
                    &mut opt,
                    tm,
                    remaining,
                    0,
                    WakeupTree::default(),
                    None,
                );
                walk.tally.dpor_races += opt.core.races;
                walk.tally.wakeup_inserts += opt.inserts;
                walk.tally.wakeup_redundant += opt.redundant;
                walk.tally.sleep_blocked += opt.blocked;
            },
        )
    } else if config.dpor && !fault_mode {
        // Source-set DPOR. Parallel: the prefix tree up to the split
        // depth is enumerated **exhaustively** (no sleep sets — a
        // reduced prefix tree could owe race reversals across the
        // boundary) and each root runs an independent source-set walk
        // with a fresh, empty trace; every full schedule then has its
        // exact prefix explored and a representative of its suffix class
        // explored from that exact state, which preserves the verdict.
        let n = scripts.len();
        explore_split(
            tm,
            pool,
            scripts,
            config,
            SplitMode {
                dedup,
                split_sleep_sets: false,
            },
            &meter,
            move |walk, tm, remaining, _sleep| {
                let mut dpor = Dpor::new(n);
                walk_dpor(walk, &mut dpor, tm, remaining, 0, None);
                walk.tally.dpor_races += dpor.races;
                walk.tally.sleep_blocked += dpor.blocked;
            },
        )
    } else {
        explore_split(
            tm,
            pool,
            scripts,
            config,
            SplitMode {
                dedup,
                split_sleep_sets: sleep_sets,
            },
            &meter,
            move |walk, tm, remaining, sleep| {
                walk_tree(
                    walk,
                    tm,
                    remaining,
                    sleep,
                    sleep_sets,
                    &mut |walk, tm, _sleep| {
                        certify_leaf(walk.space, walk.out);
                        walk.meter.note_schedule();
                        Some(tm)
                    },
                );
            },
        )
    };

    // The budget verdict, read once: any tripped cap (including a
    // panicked frontier worker, tripped externally by the split driver)
    // turns the report partial.
    let mut out = out;
    if out.exhausted.is_none() {
        out.exhausted = meter.exhausted().map(str::to_string);
    }

    // The deterministic end-of-run flush: every count below is a fixed
    // property of the search, so the snapshot is thread-count-invariant.
    // `SchedulesExecuted` is flushed from the report itself, making
    // "snapshot equals report" true by construction.
    telemetry.add(Counter::SchedulesExecuted, out.schedules as u64);
    let pruned = (n as u128)
        .checked_pow(config.depth as u32)
        .map_or(u64::MAX, |total| {
            u64::try_from(total.saturating_sub(out.schedules as u128)).unwrap_or(u64::MAX)
        });
    telemetry.add(Counter::SchedulesPruned, pruned);
    telemetry.add(Counter::MemoHits, out.dedup_hits as u64);
    telemetry.add(Counter::ExactFallbacks, out.exact_fallbacks as u64);
    telemetry.add(Counter::ViolationsFound, out.violations.len() as u64);
    telemetry.add(Counter::SleepSetBlocks, out.pruned_subtrees as u64);
    if telemetry.streams() {
        // One `fault_injected` event per distinct fault transition the
        // search exercised — a compact, deterministic digest of the
        // adversary moves this run quantified over.
        for k in 0..n {
            if out.crash_injected & (1 << k) != 0 {
                telemetry.event(
                    "fault_injected",
                    &[
                        ("engine", Json::str("explore")),
                        ("kind", Json::str("crash")),
                        ("process", Json::Int(k as i64)),
                    ],
                );
            }
        }
        for k in 0..n {
            if out.parasite_injected & (1 << k) != 0 {
                telemetry.event(
                    "fault_injected",
                    &[
                        ("engine", Json::str("explore")),
                        ("kind", Json::str("parasite")),
                        ("process", Json::Int(k as i64)),
                    ],
                );
            }
        }
        for (idx, v) in out.violations.iter().take(8).enumerate() {
            let mut fields = vec![
                ("engine", Json::str("explore")),
                (
                    "schedule",
                    Json::Arr(v.schedule.iter().map(|p| Json::Int(p.0 as i64)).collect()),
                ),
                ("detail", Json::str(v.detail.as_str())),
            ];
            if !v.faults.is_empty() {
                fields.push(("faults", v.faults.to_json()));
            }
            telemetry.event("violation", &fields);
            // The witness timeline: a deterministic replay of the
            // violating schedule from a fresh TM, one `trace` event per
            // violation, adjacent to it in the stream.
            emit_trace(
                &telemetry,
                &TraceWitness {
                    engine: "explore",
                    kind: "violation",
                    idx,
                    cycle_start: None,
                },
                factory(),
                scripts,
                0,
                &v.faults,
                &v.schedule,
            );
        }
        telemetry.heartbeat_now(
            "explore",
            &[
                (
                    "steps",
                    Json::Int(telemetry.value(Counter::WorkerSteps) as i64),
                ),
                ("schedules", Json::Int(out.schedules as i64)),
            ],
        );
        // Optimal mode pins its headline zero: `sleep_blocked_executions`
        // must appear in the snapshot event even though zero-valued
        // counters are normally elided — the zero is the claim.
        if config.optimal_dpor && !fault_mode {
            telemetry.emit_counters_pinned(tm_name, &[Counter::SleepBlockedExecutions]);
        } else {
            telemetry.emit_counters(tm_name);
        }
        // Partial runs carry no boolean headline: an exhausted search
        // proved nothing about the schedules it never reached, so the
        // verdict says `partial` + `reason` instead of `all_opaque`
        // (consumers render it as inconclusive).
        if let Some(reason) = &out.exhausted {
            telemetry.event(
                "budget_exhausted",
                &[
                    ("engine", Json::str("explore")),
                    ("reason", Json::str(reason.as_str())),
                ],
            );
            telemetry.event(
                "verdict",
                &[
                    ("engine", Json::str("explore")),
                    ("tm", Json::str(tm_name)),
                    ("partial", Json::Bool(true)),
                    ("reason", Json::str(reason.as_str())),
                    ("schedules", Json::Int(out.schedules as i64)),
                ],
            );
        } else {
            telemetry.event(
                "verdict",
                &[
                    ("engine", Json::str("explore")),
                    ("tm", Json::str(tm_name)),
                    ("all_opaque", Json::Bool(out.all_opaque())),
                    ("schedules", Json::Int(out.schedules as i64)),
                ],
            );
        }
    }
    out
}

/// Walker-variant switches threaded from [`explore_with`] into the
/// split driver: digest dedup (already resolved against the TM's
/// fingerprint support) and whether the split walk itself prunes with
/// sleep sets (sound only for the exhaustive walker — a reduced prefix
/// tree could owe race reversals across the split boundary).
#[derive(Clone, Copy)]
struct SplitMode {
    dedup: bool,
    split_sleep_sets: bool,
}

/// The shared driver behind both explorers: runs `walk_root` once from
/// the initial configuration (sequential / zero split), or splits the
/// tree at the parallel frontier — the split walk (with
/// `split_sleep_sets` pruning) collects subtree roots, `walk_root` runs
/// per root on the rayon pool, and the reports merge in lexicographic
/// root order, keeping the result deterministic regardless of thread
/// count.
fn explore_split<R>(
    tm: BoxedTm,
    mut pool: TmPool,
    scripts: &[ClientScript],
    config: &ExploreConfig,
    mode: SplitMode,
    meter: &BudgetMeter,
    walk_root: R,
) -> Exploration
where
    R: Fn(&mut Walk<'_>, BoxedTm, usize, u64) + Sync,
{
    let SplitMode {
        dedup,
        split_sleep_sets,
    } = mode;
    let n = scripts.len();
    let recycle = pool.recycles();
    let telemetry = config.telemetry.clone();
    // Crashing every process trivially halts the system, so the crash
    // budget is clamped to n-1: the adversary gains nothing beyond it
    // and the walk always has a live step to take.
    let faults = FaultConfig {
        max_crashes: config.faults.max_crashes.min(n.saturating_sub(1)),
        ..config.faults
    };
    let mut space = ScheduleSpace::new(
        scripts,
        config.depth,
        telemetry.clone(),
        config.record_schedules,
    );
    let mut out = Exploration::default();

    let split = if config.parallel {
        config
            .split_depth
            .unwrap_or_else(|| frontier::auto_split_depth(n, config.depth))
            .min(config.depth)
    } else {
        0
    };

    if !config.parallel || split == 0 {
        let mut memo = Memo::new(dedup);
        let tally = {
            let mut walk = Walk {
                space: &mut space,
                out: &mut out,
                pool: &mut pool,
                memo: &mut memo,
                tally: Tally::default(),
                faults,
                meter,
            };
            let _span = telemetry.phase("explore", "walk");
            walk_root(&mut walk, tm, config.depth, 0);
            walk.tally
        };
        tally.flush(&telemetry);
        telemetry.add(Counter::WorkerSteps, space.steps);
        return out;
    }

    let mut roots = Vec::new();
    {
        // The split walk's "leaves" collect subtree roots instead of
        // certifying, so its subtree summaries would be vacuous: dedup
        // stays off here and runs per worker below.
        let _span = telemetry.phase("explore", "split");
        let mut memo = Memo::new(false);
        let mut walk = Walk {
            space: &mut space,
            out: &mut out,
            pool: &mut pool,
            memo: &mut memo,
            tally: Tally::default(),
            faults,
            meter,
        };
        walk_tree(
            &mut walk,
            tm,
            split,
            0,
            split_sleep_sets,
            &mut |walk, tm, sleep| {
                roots.push(SubtreeRoot {
                    tm,
                    space: walk.space.subtree_root(),
                    sleep,
                });
                None
            },
        );
    }
    telemetry.add(Counter::WorkerSteps, space.steps);
    telemetry.add(Counter::FrontierSplits, 1);
    telemetry.add(Counter::FrontierItems, roots.len() as u64);
    // Per-worker seen sets by default: sound (digests are
    // thread-agnostic), deterministic, and lock-free; only cross-subtree
    // hits are forgone relative to the sequential walk. The opt-in
    // sharded shared table recovers those hits at stripe-lock cost.
    let shared = (dedup && config.shared_dedup).then(|| Arc::new(StripedTable::new()));
    let remaining = config.depth - split;
    let results = {
        let telemetry = &telemetry;
        let walk_root = &walk_root;
        let shared = &shared;
        let _span = telemetry.phase("explore", "walk");
        // Panic isolation: a worker that panics loses its subtree's
        // results but not the run — its slot comes back `None`, the
        // meter trips, and the merged report is explicitly partial.
        frontier::distribute_isolated(roots, move |mut root| {
            let mut sub = Exploration::default();
            let mut pool = TmPool::new(recycle).instrument(telemetry);
            let mut memo = match &shared {
                Some(table) => Memo::shared(Arc::clone(table)),
                None => Memo::new(dedup),
            };
            let tally = {
                let mut walk = Walk {
                    space: &mut root.space,
                    out: &mut sub,
                    pool: &mut pool,
                    memo: &mut memo,
                    tally: Tally::default(),
                    faults,
                    meter,
                };
                walk_root(&mut walk, root.tm, remaining, root.sleep);
                walk.tally
            };
            tally.flush(telemetry);
            telemetry.add(Counter::WorkerSteps, root.space.steps);
            telemetry.heartbeat("explore", || {
                let steps = telemetry.value(Counter::WorkerSteps);
                vec![
                    ("steps", Json::Int(steps as i64)),
                    (
                        "steps_per_sec",
                        Json::Num(steps as f64 / telemetry.elapsed_secs().max(1e-9)),
                    ),
                ]
            });
            sub
        })
    };
    for sub in results {
        match sub {
            Some(sub) => out.absorb(sub),
            None => meter.trip_external(),
        }
    }
    out
}

/// Explores every schedule of length `depth` over `scripts.len()`
/// processes: the drop-in entry point (prefix-sharing DFS, parallel
/// frontier, no pruning — reports are identical to the naive
/// enumerator's).
pub fn explore_schedules<F>(factory: F, scripts: &[ClientScript], depth: usize) -> Exploration
where
    F: Fn() -> BoxedTm,
{
    explore_with(factory, scripts, &ExploreConfig::new(depth))
}

/// The seed enumerator: replays every one of the `processes^depth`
/// schedules from scratch and certifies each complete history from event
/// zero. Quadratically wasteful — kept (not exported to the prelude) as
/// the differential-testing baseline for [`explore_with`].
pub fn explore_schedules_naive<F>(factory: F, scripts: &[ClientScript], depth: usize) -> Exploration
where
    F: Fn() -> BoxedTm,
{
    let n = scripts.len();
    assert!(n > 0, "need at least one process");
    let mut exploration = Exploration::default();
    let mut schedule = vec![0usize; depth];

    loop {
        // Replay this schedule.
        let mut tm = factory();
        assert_eq!(tm.process_count(), n, "factory must match scripts");
        let mut clients: Vec<Client> = scripts.iter().cloned().map(Client::new).collect();
        let mut history = History::new();
        for &k in &schedule {
            let p = ProcessId(k);
            if tm.has_pending(p) {
                if let Some(resp) = tm.poll(p) {
                    history.push(Event::response(p, resp));
                    clients[k].observe(resp);
                }
                continue;
            }
            let inv = clients[k].next_invocation();
            history.push(Event::invocation(p, inv));
            match tm.invoke(p, inv) {
                Outcome::Response(resp) => {
                    history.push(Event::response(p, resp));
                    clients[k].observe(resp);
                }
                Outcome::Pending => {}
            }
        }
        exploration.schedules += 1;

        // Certify; fall back to the exact checker on rejection.
        let mut fast = IncrementalChecker::new(Mode::Opacity);
        if let Err(reject) = fast.push_all(history.iter().copied()) {
            exploration.exact_fallbacks += 1;
            let fast_reject_at = reject.position;
            match check_opacity(&history) {
                Ok(SafetyVerdict::Satisfied { .. }) => {}
                Ok(SafetyVerdict::Violated) => {
                    exploration.violations.push(Violation {
                        schedule: schedule.iter().copied().map(ProcessId).collect(),
                        history: history.clone(),
                        detail: "no legal sequential witness exists".to_string(),
                        fast_reject_at,
                        faults: FaultPlan::none(),
                    });
                }
                Err(e) => {
                    exploration.violations.push(Violation {
                        schedule: schedule.iter().copied().map(ProcessId).collect(),
                        history: history.clone(),
                        detail: format!("exact check infeasible: {e}"),
                        fast_reject_at,
                        faults: FaultPlan::none(),
                    });
                }
            }
        }

        // Next schedule in lexicographic order.
        let mut i = depth;
        loop {
            if i == 0 {
                return exploration;
            }
            i -= 1;
            schedule[i] += 1;
            if schedule[i] < n {
                break;
            }
            schedule[i] = 0;
        }
    }
}

/// Lexicographic normal form of the dependence DAG of one executed
/// schedule: repeatedly emit the lowest-numbered process among the steps
/// whose predecessors (program order or conflicting footprints) have all
/// been emitted — the canonical representative of the schedule's
/// Mazurkiewicz class.
fn lex_normal_form(schedule: &[usize], feet: &[StepFootprint]) -> Vec<u8> {
    let depth = schedule.len();
    let mut emitted = vec![false; depth];
    let mut normal = Vec::with_capacity(depth);
    for _ in 0..depth {
        let next = (0..depth)
            .filter(|&j| {
                !emitted[j]
                    && (0..j).all(|i| {
                        emitted[i] || (schedule[i] != schedule[j] && !feet[i].conflicts(&feet[j]))
                    })
            })
            .min_by_key(|&j| schedule[j])
            .expect("the dependence DAG always has a minimal step");
        emitted[next] = true;
        normal.push(schedule[next] as u8);
    }
    normal
}

/// The canonical (lexicographically least) representative of one
/// schedule's Mazurkiewicz class, by fresh replay against a TM built by
/// `factory`: two schedules are equivalent — reachable from each other
/// by swaps of adjacent independent steps — iff their normal forms are
/// equal. The optimality tests map the explorer's
/// [`Exploration::schedule_log`] through this and assert the images are
/// pairwise distinct: at most one executed schedule per class.
pub fn schedule_normal_form<F>(factory: F, scripts: &[ClientScript], schedule: &[u8]) -> Vec<u8>
where
    F: Fn() -> BoxedTm,
{
    let mut tm = factory();
    let mut clients: Vec<Client> = scripts.iter().cloned().map(Client::new).collect();
    let mut feet = Vec::with_capacity(schedule.len());
    let mut history = Vec::new();
    for &k in schedule {
        feet.push(reduction::next_footprint(&tm, &clients, k as usize));
        step_process(&mut tm, &mut clients, k as usize, false, &mut history);
        history.clear();
    }
    let widened: Vec<usize> = schedule.iter().map(|&k| k as usize).collect();
    lex_normal_form(&widened, &feet)
}

/// Brute-force count of the Mazurkiewicz equivalence classes of the
/// `processes^depth` bounded schedules, under the dependence relation
/// declared by the TM's conflict oracle
/// ([`tm_stm::SteppedTm::step_footprint`]) — the independent
/// **optimality oracle** ceiling for the wakeup-tree explorer: optimal
/// DPOR executes pairwise-inequivalent schedules, so its executed count
/// is bounded above by this. (It is a ceiling, not an equality: at a
/// bounded depth the walk's one-step race lookahead lets one executed
/// schedule cover frontier-truncated neighbour classes it never runs —
/// see the optimal-DPOR section of the module docs.)
///
/// Every schedule is replayed from scratch and its per-step footprints
/// recorded; the schedule's class is represented by its lexicographic
/// normal form (the least linearization of the trace's dependence DAG,
/// computed greedily — well-defined because the commutation contract
/// makes footprints class-invariant), and distinct normal forms are
/// counted. Exponential in `depth` by construction; a differential
/// baseline for small shapes, not an explorer.
pub fn mazurkiewicz_classes<F>(factory: F, scripts: &[ClientScript], depth: usize) -> usize
where
    F: Fn() -> BoxedTm,
{
    let n = scripts.len();
    assert!(n > 0, "need at least one process");
    let mut canonical = std::collections::HashSet::new();
    let mut schedule = vec![0usize; depth];
    let mut feet: Vec<StepFootprint> = Vec::with_capacity(depth);

    loop {
        // Replay this schedule, recording each executed step's footprint
        // exactly as the DPOR walk sees it (the conservative global
        // footprint for blocked polls, the begin flag from the cursor).
        let mut tm = factory();
        let mut clients: Vec<Client> = scripts.iter().cloned().map(Client::new).collect();
        feet.clear();
        for &k in &schedule {
            feet.push(reduction::next_footprint(&tm, &clients, k));
            let mut history = Vec::new();
            step_process(&mut tm, &mut clients, k, false, &mut history);
        }

        canonical.insert(lex_normal_form(&schedule, &feet));

        // Next schedule in lexicographic order.
        let mut i = depth;
        loop {
            if i == 0 {
                return canonical.len();
            }
            i -= 1;
            schedule[i] += 1;
            if schedule[i] < n {
                break;
            }
            schedule[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_automata::FgpVariant;
    use tm_core::TVarId;
    use tm_stm::{Dstm, FgpTm, GlobalLock, NOrec, Ostm, TinyStm, Tl2};

    const X: TVarId = TVarId(0);

    fn two_increments() -> Vec<ClientScript> {
        vec![ClientScript::increment(X), ClientScript::increment(X)]
    }

    #[test]
    fn fgp_all_histories_opaque_two_processes() {
        for variant in [FgpVariant::Strict, FgpVariant::CpOnly] {
            let result =
                explore_schedules(|| Box::new(FgpTm::new(2, 1, variant)), &two_increments(), 9);
            assert_eq!(result.schedules, 512);
            assert!(result.all_opaque(), "{variant:?}: {:?}", result.violations);
        }
    }

    #[test]
    fn literal_fgp_violations_are_found_by_exploration() {
        // The model checker finds the aborted-write leak of the literal
        // formal rules without any hand-crafted scenario: some schedule of
        // two increment clients exposes it.
        let result = explore_schedules(
            || tm_stm::literal_fgp(2, 1),
            &[
                ClientScript::increment(X),
                // A client writing a distinguishable constant.
                ClientScript::new(vec![
                    crate::workload::PlannedOp::Read(X),
                    crate::workload::PlannedOp::Write(X, 5),
                ]),
            ],
            10,
        );
        assert!(
            !result.all_opaque(),
            "expected the literal-Fgp leak to surface within depth 10"
        );
        // Violations surface their shortest failing prefix.
        for v in &result.violations {
            assert!(v.fast_reject_at < v.history.len());
        }
    }

    type Factory = Box<dyn Fn() -> BoxedTm>;

    #[test]
    fn every_catalog_tm_is_opaque_at_depth_eight() {
        let factories: Vec<(&str, Factory)> = vec![
            ("tl2", Box::new(|| Box::new(Tl2::new(2, 1)) as BoxedTm)),
            ("tiny", Box::new(|| Box::new(TinyStm::new(2, 1)) as BoxedTm)),
            ("norec", Box::new(|| Box::new(NOrec::new(2, 1)) as BoxedTm)),
            ("ostm", Box::new(|| Box::new(Ostm::new(2, 1)) as BoxedTm)),
            ("dstm", Box::new(|| Box::new(Dstm::new(2, 1)) as BoxedTm)),
            (
                "global-lock",
                Box::new(|| Box::new(GlobalLock::new(2, 1)) as BoxedTm),
            ),
        ];
        for (name, factory) in factories {
            let result = explore_schedules(&*factory, &two_increments(), 8);
            assert!(result.all_opaque(), "{name}: {:?}", result.violations);
        }
    }

    #[test]
    fn three_process_exploration() {
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::increment(X),
            ClientScript::read_both(X, TVarId(1)),
        ];
        let result = explore_schedules(
            || Box::new(FgpTm::new(3, 2, FgpVariant::CpOnly)),
            &scripts,
            7,
        );
        assert_eq!(result.schedules, 3usize.pow(7));
        assert!(result.all_opaque());
    }

    #[test]
    fn dfs_matches_naive_exactly_on_an_opaque_tm() {
        let scripts = two_increments();
        let naive = explore_schedules_naive(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            8,
        );
        let dfs = explore_with(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &ExploreConfig::new(8).sequential(),
        );
        assert_eq!(naive, dfs);
    }

    #[test]
    fn dfs_matches_naive_exactly_on_the_buggy_tm() {
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::new(vec![
                crate::workload::PlannedOp::Read(X),
                crate::workload::PlannedOp::Write(X, 5),
            ]),
        ];
        let naive = explore_schedules_naive(|| tm_stm::literal_fgp(2, 1), &scripts, 9);
        let dfs = explore_with(
            || tm_stm::literal_fgp(2, 1),
            &scripts,
            &ExploreConfig::new(9).sequential(),
        );
        assert!(!naive.all_opaque());
        assert_eq!(naive, dfs);
    }

    #[test]
    fn parallel_split_depths_do_not_change_the_report() {
        let scripts = two_increments();
        let base = explore_with(
            || Box::new(Tl2::new(2, 1)),
            &scripts,
            &ExploreConfig::new(9).sequential(),
        );
        for split in [0, 1, 3, 5, 9] {
            let par = explore_with(
                || Box::new(Tl2::new(2, 1)),
                &scripts,
                &ExploreConfig::new(9).with_split_depth(split),
            );
            assert_eq!(base, par, "split depth {split}");
        }
    }

    #[test]
    fn sleep_sets_prune_but_preserve_verdicts() {
        // Two processes on disjoint variables: almost everything commutes.
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::increment(TVarId(1)),
        ];
        let full = explore_with(
            || Box::new(Tl2::new(2, 2)),
            &scripts,
            &ExploreConfig::new(8).sequential(),
        );
        let pruned = explore_with(
            || Box::new(Tl2::new(2, 2)),
            &scripts,
            &ExploreConfig::new(8).sequential().with_sleep_sets(),
        );
        assert!(pruned.schedules < full.schedules);
        assert!(pruned.pruned_subtrees > 0);
        assert_eq!(full.all_opaque(), pruned.all_opaque());
    }

    #[test]
    fn sleep_sets_disable_for_tms_without_the_commutation_contract() {
        // The global-lock TM acquires the global lock on its first
        // operation, and TinySTM's aborts roll back (and unlock) the
        // transaction's whole write set across variables — in both
        // cases disjoint-variable steps do NOT commute, so the explorer
        // must ignore the pruning request and visit every schedule.
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::increment(TVarId(1)),
        ];
        let factories: Vec<(&str, Factory)> = vec![
            (
                "global-lock",
                Box::new(|| Box::new(GlobalLock::new(2, 2)) as BoxedTm),
            ),
            ("tiny", Box::new(|| Box::new(TinyStm::new(2, 2)) as BoxedTm)),
        ];
        for (name, factory) in factories {
            let pruned = explore_with(
                &*factory,
                &scripts,
                &ExploreConfig::new(8).sequential().with_sleep_sets(),
            );
            assert_eq!(pruned.schedules, 1 << 8, "{name}");
            assert_eq!(pruned.pruned_subtrees, 0, "{name}");
            let full = explore_with(&*factory, &scripts, &ExploreConfig::new(8).sequential());
            assert_eq!(full, pruned, "{name}");
        }
    }

    #[test]
    fn dedup_replays_subtrees_but_reports_identically() {
        let scripts = two_increments();
        let full = explore_with(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &ExploreConfig::new(10).sequential(),
        );
        let deduped = explore_with(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &ExploreConfig::new(10).sequential().with_dedup(),
        );
        assert!(deduped.dedup_hits > 0, "the increment workload must merge");
        assert_eq!(full.report(), deduped.report());
        assert_eq!(deduped.schedules, 1 << 10, "hits still count every leaf");
    }

    #[test]
    fn dedup_still_catches_the_buggy_tm_with_identical_violations() {
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::new(vec![
                crate::workload::PlannedOp::Read(X),
                crate::workload::PlannedOp::Write(X, 5),
            ]),
        ];
        let full = explore_with(
            || tm_stm::literal_fgp(2, 1),
            &scripts,
            &ExploreConfig::new(10).sequential(),
        );
        let deduped = explore_with(
            || tm_stm::literal_fgp(2, 1),
            &scripts,
            &ExploreConfig::new(10).sequential().with_dedup(),
        );
        assert!(!full.all_opaque());
        assert_eq!(full.report(), deduped.report());
    }

    #[test]
    fn dedup_composes_with_sleep_sets_and_parallelism() {
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::increment(TVarId(1)),
        ];
        let base = explore_with(
            || Box::new(Tl2::new(2, 2)),
            &scripts,
            &ExploreConfig::new(9).sequential().with_sleep_sets(),
        );
        let deduped = explore_with(
            || Box::new(Tl2::new(2, 2)),
            &scripts,
            &ExploreConfig::new(9)
                .sequential()
                .with_sleep_sets()
                .with_dedup(),
        );
        assert_eq!(base.report(), deduped.report());
        assert_eq!(base.pruned_subtrees, deduped.pruned_subtrees);
        let parallel = explore_with(
            || Box::new(Tl2::new(2, 2)),
            &scripts,
            &ExploreConfig::new(9)
                .with_split_depth(3)
                .with_sleep_sets()
                .with_dedup(),
        );
        assert_eq!(base.report(), parallel.report());
    }

    #[test]
    fn dpor_reduces_schedules_and_preserves_verdicts() {
        let scripts = two_increments();
        let full = explore_with(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &ExploreConfig::new(9).sequential(),
        );
        let dpor = explore_with(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &ExploreConfig::new(9).sequential().with_dpor(),
        );
        assert!(
            dpor.schedules < full.schedules,
            "reduction must fire: {} vs {}",
            dpor.schedules,
            full.schedules
        );
        assert_eq!(full.all_opaque(), dpor.all_opaque());
    }

    #[test]
    fn dpor_still_catches_the_buggy_tm_with_a_subset_of_violations() {
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::new(vec![
                crate::workload::PlannedOp::Read(X),
                crate::workload::PlannedOp::Write(X, 5),
            ]),
        ];
        let full = explore_with(
            || tm_stm::literal_fgp(2, 1),
            &scripts,
            &ExploreConfig::new(9).sequential(),
        );
        let dpor = explore_with(
            || tm_stm::literal_fgp(2, 1),
            &scripts,
            &ExploreConfig::new(9).sequential().with_dpor(),
        );
        assert!(!full.all_opaque() && !dpor.all_opaque());
        // Every DPOR violation is a real schedule the unreduced explorer
        // also reports, verbatim.
        for v in &dpor.violations {
            assert!(full.violations.contains(v), "unknown violation {v:?}");
        }
    }

    #[test]
    fn dpor_degenerates_to_full_exploration_for_conservative_oracles() {
        // The global-lock TM's audited oracle conflicts on every pair,
        // so DPOR must visit every schedule — same report as plain DFS.
        let scripts = two_increments();
        let full = explore_with(
            || Box::new(GlobalLock::new(2, 1)),
            &scripts,
            &ExploreConfig::new(8).sequential(),
        );
        let dpor = explore_with(
            || Box::new(GlobalLock::new(2, 1)),
            &scripts,
            &ExploreConfig::new(8).sequential().with_dpor(),
        );
        assert_eq!(full, dpor);
    }

    #[test]
    fn dpor_composes_with_parallel_split_and_dedup() {
        let scripts = two_increments();
        let base = explore_with(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &ExploreConfig::new(9).sequential().with_dpor(),
        );
        let deduped = explore_with(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &ExploreConfig::new(9).sequential().with_dpor().with_dedup(),
        );
        // Dedup must not change the verdict; executed-schedule counts may
        // legitimately differ only through replayed summaries, which are
        // themselves executed-schedule counts — so they must match too.
        assert_eq!(base.report(), deduped.report());
        for split in [1, 3, 5] {
            let par = explore_with(
                || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
                &scripts,
                &ExploreConfig::new(9).with_split_depth(split).with_dpor(),
            );
            // The parallel frontier enumerates prefixes exhaustively, so
            // its executed-schedule count sits between the sequential
            // DPOR count and the full tree; the verdict is preserved.
            assert_eq!(par.all_opaque(), base.all_opaque(), "split {split}");
            assert!(par.schedules >= base.schedules, "split {split}");
            assert!(par.schedules <= 1 << 9, "split {split}");
        }
    }

    #[test]
    fn shared_dedup_reports_match_per_worker_dedup() {
        let scripts = two_increments();
        let per_worker = explore_with(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &ExploreConfig::new(10).with_split_depth(3).with_dedup(),
        );
        let shared = explore_with(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &ExploreConfig::new(10)
                .with_split_depth(3)
                .with_dedup()
                .with_shared_dedup(),
        );
        assert_eq!(per_worker.report(), shared.report());
        assert_eq!(shared.schedules, 1 << 10);
    }

    #[test]
    fn sleep_sets_still_catch_the_buggy_tm() {
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::new(vec![
                crate::workload::PlannedOp::Read(X),
                crate::workload::PlannedOp::Write(X, 5),
            ]),
        ];
        let pruned = explore_with(
            || tm_stm::literal_fgp(2, 1),
            &scripts,
            &ExploreConfig::new(10).with_sleep_sets(),
        );
        assert!(
            !pruned.all_opaque(),
            "pruning must preserve the violation verdict"
        );
    }
}
