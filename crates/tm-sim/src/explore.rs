//! Bounded-exhaustive interleaving exploration (the model checker).
//!
//! Theorem 3 claims **every** finite history of `Fgp` is opaque. For an
//! automaton-level ∀-claim the executable analogue is bounded-exhaustive
//! checking: enumerate *all* schedules of `n` deterministic clients up to
//! a depth and verify every produced history. Acceptance uses the fast
//! commit-order certifier and falls back to the exact witness search on
//! rejection, so every reported violation is definitive.
//!
//! # Prefix-sharing DFS
//!
//! Schedules of length `d` over `n` processes form the complete `n`-ary
//! tree of depth `d`; two schedules with a common prefix reach the *same*
//! intermediate state. The explorer therefore walks that tree depth-first
//! and extends the parent state by **one step per edge** instead of
//! replaying each of the `n^d` schedules from scratch:
//!
//! * the TM branches via [`tm_stm::SteppedTm::fork`] (all but a node's
//!   last child fork; the last child consumes the parent's instance, so a
//!   binary tree performs about one fork per node, not two);
//! * the client that stepped backtracks via an O(1)
//!   [`Client::mark`]/[`Client::restore`] snapshot;
//! * the commit-order certifier advances one event at a time and unwinds
//!   through [`IncrementalChecker::rollback`], so a rejection latches at
//!   the **shortest failing prefix** of the branch (reported per
//!   violation in [`Violation::fast_reject_at`]).
//!
//! Per-edge cost is thereby amortized O(1) TM/client/certifier work plus
//! one TM fork, versus the naive enumerator's O(depth) replay and
//! O(history) re-certification per schedule — the asymptotic gap grows
//! linearly with depth. The naive enumerator survives as
//! [`explore_schedules_naive`] for differential testing; both explorers
//! produce *identical* [`Exploration`] reports (same schedule counts,
//! fallback counts and violation lists, in the same lexicographic
//! order).
//!
//! # Parallel frontier
//!
//! With [`ExploreConfig::parallel`], the tree is split at a fixed depth:
//! every node at that depth becomes a subtree root carrying its own
//! forked TM, client snapshots and a compacted clone of the certifier,
//! and the roots are distributed over a thread pool (dynamic dealing —
//! idle workers claim the next root, so skewed subtrees balance). Roots
//! are processed in lexicographic order and merged in order, keeping the
//! report deterministic regardless of thread count.
//!
//! # Sleep-set pruning
//!
//! With [`ExploreConfig::sleep_sets`], schedules that differ only by
//! swapping adjacent **independent** steps are explored once. Two steps
//! are treated as independent exactly when both are operation steps
//! (read or write) by different processes on **different t-variables**
//! *and* the TM has opted into
//! [`tm_stm::SteppedTm::disjoint_var_ops_commute`] — an audited,
//! per-algorithm contract that such steps map TM states to the same
//! state in either order with the same responses. For TMs that keep
//! the conservative default (the blocking global-lock TM acquires the
//! lock on its first operation; SwissTM draws a fresh global
//! begin-timestamp), the explorer silently disables pruning instead of
//! risking a false certification. The remaining soundness argument:
//!
//! * `tryC` steps mutate global state (clocks, committed values,
//!   dooming) and are never classified independent;
//! * poll steps of blocking TMs depend on the global lock state and are
//!   likewise never independent;
//! * client state is per-process, so steps of different processes
//!   commute trivially;
//! * the certifier's verdict is invariant under swapping adjacent events
//!   of different processes on different variables when no commit
//!   intervenes (candidate slots are pruned per-variable against a
//!   committed-state sequence that only `tryC` extends).
//!
//! Swapping adjacent independent steps therefore maps each pruned
//! schedule to an explored one with an identical safety verdict: the
//! pruned exploration reports a violation iff the full exploration does.
//! Pruning changes the *number* of schedules visited (that is its
//! point), so differential tests comparing counts run with it disabled;
//! a separate test checks verdict equivalence with it enabled.
//!
//! # Digest dedup: collapsing the tree into a DAG
//!
//! Distinct schedule prefixes routinely reach the *same* configuration —
//! the same TM state, client cursors and certifier state (permuting two
//! processes' already-certified steps is the canonical case). The subtree
//! below such a configuration depends on nothing else, so with
//! [`ExploreConfig::dedup`] the explorer keys a seen set on
//!
//! `(TM state digest, client cursors, certifier digest, sleep set,
//!   remaining depth)`
//!
//! and, on a hit, *replays the memoized subtree summary* (schedule and
//! pruned-subtree counts) instead of walking the subtree again — turning
//! the schedule tree into a DAG. TM digests come from the per-algorithm
//! [`tm_stm::SteppedTm::state_digest`] canonicalization contract;
//! certifier digests from
//! [`tm_safety::IncrementalChecker::state_digest`]. For TMs without a
//! fingerprint the option silently disables (mirroring sleep sets).
//!
//! Two rules keep the reports **byte-identical** to the exhaustive
//! explorer's (differential-tested across the catalogue):
//!
//! * a subtree is memoized only when it certified *silently* — no
//!   violations and no exact-checker fallbacks. Those rare subtrees
//!   carry path-dependent report data (violation schedules/histories,
//!   exact re-checks of the full history), so every prefix re-explores
//!   them and reports its own copy;
//! * no lookup happens while a fast-certifier rejection is latched (all
//!   leaves below it fall back to the exact checker).
//!
//! Equal keys imply equal futures: the TM digest determines every future
//! response (the fingerprint contract), cursors determine every future
//! invocation, and the certifier digest determines every future verdict —
//! so the memoized counts transfer exactly, collision risk aside (which
//! is what the differential suite guards).

use std::collections::HashMap;

use tm_core::{Event, History, Invocation, ProcessId, TVarId};
use tm_safety::{check_opacity, IncrementalChecker, Mode, SafetyVerdict};
use tm_stm::{BoxedTm, Outcome, SteppedTm};

use rayon::prelude::*;

use crate::workload::{clients_digest, Client, ClientScript};

/// A definitive safety violation found during exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The schedule (process per step) that produced the history.
    pub schedule: Vec<ProcessId>,
    /// The offending history.
    pub history: History,
    /// Why it is not opaque.
    pub detail: String,
    /// Index of the event at which the commit-order certifier first
    /// rejected — the shortest failing prefix of this schedule's branch.
    pub fast_reject_at: usize,
}

/// Outcome of an exploration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Exploration {
    /// Complete schedules replayed (leaves visited).
    pub schedules: usize,
    /// Histories that needed the exact checker (fast path rejected).
    pub exact_fallbacks: usize,
    /// Definitive opacity violations, in schedule-lexicographic order.
    pub violations: Vec<Violation>,
    /// Subtrees skipped by sleep-set pruning (0 unless enabled).
    pub pruned_subtrees: usize,
    /// Subtrees replayed from the digest seen set (0 unless enabled).
    pub dedup_hits: usize,
}

impl Exploration {
    /// Whether every explored history was opaque.
    pub fn all_opaque(&self) -> bool {
        self.violations.is_empty()
    }

    /// The *report* portion of the exploration — schedule count, exact
    /// fallback count and violations. Search diagnostics (pruned-subtree
    /// and dedup-hit counts) are excluded: two explorations "report
    /// identically" iff these match.
    pub fn report(&self) -> (usize, usize, &[Violation]) {
        (self.schedules, self.exact_fallbacks, &self.violations)
    }

    fn absorb(&mut self, other: Exploration) {
        self.schedules += other.schedules;
        self.exact_fallbacks += other.exact_fallbacks;
        self.violations.extend(other.violations);
        self.pruned_subtrees += other.pruned_subtrees;
        self.dedup_hits += other.dedup_hits;
    }
}

/// Configuration for [`explore_with`].
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Schedule length to explore exhaustively.
    pub depth: usize,
    /// Distribute subtrees over a thread pool.
    pub parallel: bool,
    /// Prefix length at which the tree is split into parallel subtree
    /// roots; `None` picks the smallest prefix yielding at least eight
    /// roots per worker thread.
    pub split_depth: Option<usize>,
    /// Skip schedules differing only by swaps of adjacent independent
    /// steps (see the module docs for the soundness argument). Changes
    /// `schedules` counts, never verdicts. Takes effect only for TMs
    /// whose [`tm_stm::SteppedTm::disjoint_var_ops_commute`] contract
    /// holds; for the rest pruning is silently disabled.
    pub sleep_sets: bool,
    /// Collapse the schedule tree into a DAG via the digest seen set
    /// (see the module docs). Reports stay byte-identical; `schedules`
    /// still counts every leaf of the full tree. Takes effect only for
    /// TMs implementing [`tm_stm::SteppedTm::state_digest`]; for the
    /// rest dedup is silently disabled.
    pub dedup: bool,
}

impl ExploreConfig {
    /// Exhaustive exploration to `depth`: parallel, no pruning — the
    /// drop-in semantics of [`explore_schedules`].
    pub fn new(depth: usize) -> Self {
        ExploreConfig {
            depth,
            parallel: true,
            split_depth: None,
            sleep_sets: false,
            dedup: false,
        }
    }

    /// Disables the parallel frontier.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Enables sleep-set pruning.
    pub fn with_sleep_sets(mut self) -> Self {
        self.sleep_sets = true;
        self
    }

    /// Pins the parallel split depth.
    pub fn with_split_depth(mut self, split: usize) -> Self {
        self.split_depth = Some(split);
        self
    }

    /// Enables digest dedup (the cross-schedule seen set).
    pub fn with_dedup(mut self) -> Self {
        self.dedup = true;
        self
    }
}

/// What a process's next step would do, for the independence relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Footprint {
    /// An operation step confined to one t-variable.
    Var(TVarId),
    /// A step whose effect or outcome depends on global TM state
    /// (`tryC`, or polling a blocking TM).
    Global,
}

/// One step of process `k`: deliver a withheld response if one exists,
/// otherwise issue the client's next invocation. Events are appended to
/// `history` and pushed into `checker` (whose verdict latches on
/// rejection).
fn step(
    tm: &mut BoxedTm,
    clients: &mut [Client],
    k: usize,
    history: &mut Vec<Event>,
    checker: &mut IncrementalChecker,
) {
    let p = ProcessId(k);
    if tm.has_pending(p) {
        if let Some(resp) = tm.poll(p) {
            let event = Event::response(p, resp);
            history.push(event);
            let _ = checker.push(event);
            clients[k].observe(resp);
        }
        return;
    }
    let inv = clients[k].next_invocation();
    history.push(Event::invocation(p, inv));
    match tm.invoke(p, inv) {
        Outcome::Response(resp) => {
            history.push(Event::response(p, resp));
            // Fused invocation+response certification: one record lookup
            // and one undo entry, observationally identical to two
            // `push` calls.
            let _ = checker.push_call(p, inv, resp);
            clients[k].observe(resp);
        }
        Outcome::Pending => {
            let _ = checker.push(Event::invocation(p, inv));
        }
    }
}

fn footprint(tm: &BoxedTm, clients: &[Client], k: usize) -> Footprint {
    if tm.has_pending(ProcessId(k)) {
        return Footprint::Global;
    }
    match clients[k].next_invocation() {
        Invocation::Read(x) | Invocation::Write(x, _) => Footprint::Var(x),
        Invocation::TryCommit => Footprint::Global,
    }
}

fn independent(a: Footprint, b: Footprint) -> bool {
    match (a, b) {
        (Footprint::Var(x), Footprint::Var(y)) => x != y,
        _ => false,
    }
}

/// Certify a completed schedule exactly as the naive enumerator does:
/// count it, and when the (latched) fast certifier rejected somewhere on
/// this branch, fall back to the exact checker on the full history.
fn certify_leaf(
    path: &[usize],
    history: &[Event],
    checker: &IncrementalChecker,
    out: &mut Exploration,
) {
    out.schedules += 1;
    let Some(reject) = checker.violation() else {
        return;
    };
    out.exact_fallbacks += 1;
    let fast_reject_at = reject.position;
    let mut full = History::new();
    for &event in history {
        full.push(event);
    }
    match check_opacity(&full) {
        Ok(SafetyVerdict::Satisfied { .. }) => {}
        Ok(SafetyVerdict::Violated) => {
            out.violations.push(Violation {
                schedule: path.iter().copied().map(ProcessId).collect(),
                history: full,
                detail: "no legal sequential witness exists".to_string(),
                fast_reject_at,
            });
        }
        Err(e) => {
            out.violations.push(Violation {
                schedule: path.iter().copied().map(ProcessId).collect(),
                history: full,
                detail: format!("exact check infeasible: {e}"),
                fast_reject_at,
            });
        }
    }
}

/// Key of the digest seen set: one explored configuration of the search,
/// at one remaining depth (memoized subtree summaries only transfer
/// between identical residual searches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MemoKey {
    tm: u64,
    clients: u64,
    checker: u64,
    sleep: u64,
    remaining: u32,
}

/// The memoized summary of a silently-certified subtree.
#[derive(Debug, Clone, Copy)]
struct MemoDelta {
    schedules: usize,
    pruned_subtrees: usize,
}

/// The digest seen set (one per sequential walk / parallel worker).
#[derive(Debug, Default)]
struct Memo {
    enabled: bool,
    table: HashMap<MemoKey, MemoDelta>,
}

impl Memo {
    fn new(enabled: bool) -> Self {
        Memo {
            enabled,
            ..Memo::default()
        }
    }
}

/// The per-path mutable state of the depth-first walk. The TM is owned
/// and consumed per call (the last child of a node steals the parent's
/// instance); everything else unwinds in place.
struct Walk<'a> {
    clients: &'a mut Vec<Client>,
    path: &'a mut Vec<usize>,
    history: &'a mut Vec<Event>,
    checker: &'a mut IncrementalChecker,
    out: &'a mut Exploration,
    /// Recycled TM boxes: sibling forks re-initialize one of these via
    /// [`SteppedTm::refork_from`] instead of allocating. Left empty for
    /// TMs without that fast path (probed once per exploration), so
    /// they pay no per-edge pop/refork-attempt overhead.
    spare: &'a mut Vec<BoxedTm>,
    /// Whether the TM under exploration supports `refork_from`.
    recycle: bool,
    /// The digest seen set (disabled during the parallel split walk,
    /// whose "leaves" collect subtree roots rather than certifying).
    memo: &'a mut Memo,
}

/// Per-node footprints of every process's next step, on the stack (no
/// allocation in the hot recursion).
type Feet = [Footprint; 64];

/// The sleep set `sleep` filtered down for the child reached by stepping
/// `k`: a sibling stays asleep only while its step is independent of the
/// step just taken.
fn filtered_sleep(sleep: u64, feet: &Feet, k: usize, n: usize) -> u64 {
    let mut kept = 0u64;
    for q in 0..n {
        if sleep & (1 << q) != 0 && independent(feet[q], feet[k]) {
            kept |= 1 << q;
        }
    }
    kept
}

/// Depth-first walk of the schedule tree below the current path,
/// invoking `leaf` at depth `remaining == 0` with ownership of the TM.
/// Returns the TM box for recycling (`None` if a leaf kept it).
///
/// `sleep` is the sleep set: processes whose next step is provably
/// covered by an already-explored sibling subtree. When `sleep_sets` is
/// false it is always empty.
fn walk_tree<L>(
    walk: &mut Walk<'_>,
    mut tm: BoxedTm,
    remaining: usize,
    mut sleep: u64,
    sleep_sets: bool,
    leaf: &mut L,
) -> Option<BoxedTm>
where
    L: FnMut(&mut Walk<'_>, BoxedTm, u64) -> Option<BoxedTm>,
{
    if remaining == 0 {
        return leaf(walk, tm, sleep);
    }
    // Digest dedup: replay a memoized subtree summary, or note the entry
    // counters so this subtree can be memoized on the way out. No lookup
    // while a rejection is latched (every leaf below falls back to the
    // exact checker on the full, path-dependent history).
    let memo_note = if walk.memo.enabled && walk.checker.violation().is_none() {
        let key = MemoKey {
            tm: tm
                .state_digest()
                .expect("dedup runs only for fingerprinting TMs"),
            clients: clients_digest(walk.clients),
            checker: walk.checker.state_digest(),
            sleep,
            remaining: remaining as u32,
        };
        if let Some(&delta) = walk.memo.table.get(&key) {
            walk.out.schedules += delta.schedules;
            walk.out.pruned_subtrees += delta.pruned_subtrees;
            walk.out.dedup_hits += 1;
            return Some(tm);
        }
        Some((
            key,
            walk.out.schedules,
            walk.out.exact_fallbacks,
            walk.out.violations.len(),
            walk.out.pruned_subtrees,
        ))
    } else {
        None
    };
    let n = walk.clients.len();
    walk.out.pruned_subtrees += sleep.count_ones() as usize;
    // Only materialize footprints when pruning is on: the array init is
    // measurable in the no-pruning hot path.
    let feet: Option<Feet> = if sleep_sets {
        let mut feet: Feet = [Footprint::Global; 64];
        for (k, foot) in feet.iter_mut().enumerate().take(n) {
            *foot = footprint(&tm, walk.clients, k);
        }
        Some(feet)
    } else {
        None
    };
    let last = (0..n)
        .rev()
        .find(|k| sleep & (1 << k) == 0)
        .expect("a step is always possible");
    for k in 0..n {
        if sleep & (1 << k) != 0 || k == last {
            continue;
        }
        let checkpoint = walk.checker.checkpoint();
        let history_len = walk.history.len();
        let mark = walk.clients[k].mark();
        walk.path.push(k);
        let mut child = match walk.spare.pop() {
            Some(mut spare) => {
                if spare.refork_from(&*tm) {
                    spare
                } else {
                    tm.fork()
                }
            }
            None => tm.fork(),
        };
        step(&mut child, walk.clients, k, walk.history, walk.checker);
        let child_sleep = feet.as_ref().map_or(0, |f| filtered_sleep(sleep, f, k, n));
        let recycled = walk_tree(walk, child, remaining - 1, child_sleep, sleep_sets, leaf);
        if let Some(recycled) = recycled {
            if walk.recycle {
                walk.spare.push(recycled);
            }
        }
        walk.path.pop();
        walk.history.truncate(history_len);
        walk.checker.rollback(checkpoint);
        walk.clients[k].restore(mark);
        sleep |= 1 << k;
    }
    // The last child consumes the parent's TM instance: no fork.
    // (Deferring this edge's rollback to an ancestor is semantically
    // sound but measurably slower — it trades the undo log's tight LIFO
    // locality for large cold sweeps.)
    let checkpoint = walk.checker.checkpoint();
    let history_len = walk.history.len();
    let mark = walk.clients[last].mark();
    walk.path.push(last);
    let child_sleep = feet
        .as_ref()
        .map_or(0, |f| filtered_sleep(sleep, f, last, n));
    step(&mut tm, walk.clients, last, walk.history, walk.checker);
    let recycled = walk_tree(walk, tm, remaining - 1, child_sleep, sleep_sets, leaf);
    walk.path.pop();
    walk.history.truncate(history_len);
    walk.checker.rollback(checkpoint);
    walk.clients[last].restore(mark);
    // Memoize only silently-certified subtrees: violations and exact
    // fallbacks carry path-dependent report data that must be recomputed
    // per prefix (see the module docs).
    if let Some((key, schedules, fallbacks, violations, pruned)) = memo_note {
        if walk.out.exact_fallbacks == fallbacks && walk.out.violations.len() == violations {
            walk.memo.table.insert(
                key,
                MemoDelta {
                    schedules: walk.out.schedules - schedules,
                    pruned_subtrees: walk.out.pruned_subtrees - pruned,
                },
            );
        }
    }
    recycled
}

/// A node at the parallel split depth, carrying everything a worker
/// needs to explore its subtree independently.
struct SubtreeRoot {
    tm: BoxedTm,
    clients: Vec<Client>,
    checker: IncrementalChecker,
    path: Vec<usize>,
    history: Vec<Event>,
    sleep: u64,
}

fn auto_split_depth(n: usize, depth: usize) -> usize {
    let workers = rayon::current_num_threads();
    if workers <= 1 {
        return 0;
    }
    let target = workers * 8;
    let mut split = 0;
    let mut roots = 1usize;
    while roots < target && split < depth.saturating_sub(1) {
        roots *= n;
        split += 1;
    }
    split
}

/// Explores every schedule of length `config.depth` over `scripts.len()`
/// processes against TMs built by `factory` (called once; the tree
/// branches via [`tm_stm::SteppedTm::fork`]), checking opacity of every
/// produced history — and, because the certifier is incremental and
/// eager, of every prefix.
///
/// # Panics
///
/// Panics if `scripts` is empty, has more than 64 entries, or does not
/// match the factory's process count.
pub fn explore_with<F>(factory: F, scripts: &[ClientScript], config: &ExploreConfig) -> Exploration
where
    F: Fn() -> BoxedTm,
{
    let n = scripts.len();
    assert!(n > 0, "need at least one process");
    assert!(n <= 64, "sleep sets are a u64 bitmask");
    let tm = factory();
    assert_eq!(tm.process_count(), n, "factory must match scripts");
    // Sleep sets are sound only for TMs whose disjoint-variable
    // operations provably commute (an audited, opt-in trait contract);
    // for the rest, pruning silently disables rather than risking a
    // false certification.
    let sleep_sets = config.sleep_sets && tm.disjoint_var_ops_commute();
    // Probe refork support once: TMs without it keep the spare pool
    // empty rather than paying a failed dynamic refork per tree edge.
    let recycle = {
        let mut probe = tm.fork();
        probe.refork_from(&*tm)
    };
    // Digest dedup silently disables for TMs without a fingerprint,
    // mirroring the sleep-set probe above.
    let dedup = config.dedup && tm.state_digest().is_some();

    let mut clients: Vec<Client> = scripts.iter().cloned().map(Client::new).collect();
    let mut checker = IncrementalChecker::new(Mode::Opacity);
    let mut path = Vec::with_capacity(config.depth);
    let mut history = Vec::with_capacity(config.depth * 2);
    let mut out = Exploration::default();
    let mut spare = Vec::new();

    let split = if config.parallel {
        config
            .split_depth
            .unwrap_or_else(|| auto_split_depth(n, config.depth))
            .min(config.depth)
    } else {
        0
    };

    if !config.parallel || split == 0 {
        let mut memo = Memo::new(dedup);
        let mut walk = Walk {
            clients: &mut clients,
            path: &mut path,
            history: &mut history,
            checker: &mut checker,
            out: &mut out,
            spare: &mut spare,
            recycle,
            memo: &mut memo,
        };
        walk_tree(
            &mut walk,
            tm,
            config.depth,
            0,
            sleep_sets,
            &mut |walk, tm, _sleep| {
                certify_leaf(walk.path, walk.history, walk.checker, walk.out);
                Some(tm)
            },
        );
        return out;
    }

    let mut roots = Vec::new();
    {
        // The split walk's "leaves" collect subtree roots instead of
        // certifying, so its subtree summaries would be vacuous: dedup
        // stays off here and runs per worker below.
        let mut memo = Memo::new(false);
        let mut walk = Walk {
            clients: &mut clients,
            path: &mut path,
            history: &mut history,
            checker: &mut checker,
            out: &mut out,
            spare: &mut spare,
            recycle,
            memo: &mut memo,
        };
        walk_tree(
            &mut walk,
            tm,
            split,
            0,
            sleep_sets,
            &mut |walk, tm, sleep| {
                let mut checker = walk.checker.clone();
                checker.compact();
                roots.push(SubtreeRoot {
                    tm,
                    clients: walk.clients.clone(),
                    checker,
                    path: walk.path.clone(),
                    history: walk.history.clone(),
                    sleep,
                });
                None
            },
        );
    }
    let remaining = config.depth - split;
    let results: Vec<Exploration> = roots
        .into_par_iter()
        .map(move |mut root| {
            let mut sub = Exploration::default();
            let mut spare = Vec::new();
            // Per-worker seen set: sound (digests are thread-agnostic),
            // deterministic, and lock-free; only cross-subtree hits are
            // forgone relative to the sequential walk.
            let mut memo = Memo::new(dedup);
            let mut walk = Walk {
                clients: &mut root.clients,
                path: &mut root.path,
                history: &mut root.history,
                checker: &mut root.checker,
                out: &mut sub,
                spare: &mut spare,
                recycle,
                memo: &mut memo,
            };
            walk_tree(
                &mut walk,
                root.tm,
                remaining,
                root.sleep,
                sleep_sets,
                &mut |walk, tm, _sleep| {
                    certify_leaf(walk.path, walk.history, walk.checker, walk.out);
                    Some(tm)
                },
            );
            sub
        })
        .collect();
    for sub in results {
        out.absorb(sub);
    }
    out
}

/// Explores every schedule of length `depth` over `scripts.len()`
/// processes: the drop-in entry point (prefix-sharing DFS, parallel
/// frontier, no pruning — reports are identical to the naive
/// enumerator's).
pub fn explore_schedules<F>(factory: F, scripts: &[ClientScript], depth: usize) -> Exploration
where
    F: Fn() -> BoxedTm,
{
    explore_with(factory, scripts, &ExploreConfig::new(depth))
}

/// The seed enumerator: replays every one of the `processes^depth`
/// schedules from scratch and certifies each complete history from event
/// zero. Quadratically wasteful — kept (not exported to the prelude) as
/// the differential-testing baseline for [`explore_with`].
pub fn explore_schedules_naive<F>(factory: F, scripts: &[ClientScript], depth: usize) -> Exploration
where
    F: Fn() -> BoxedTm,
{
    let n = scripts.len();
    assert!(n > 0, "need at least one process");
    let mut exploration = Exploration::default();
    let mut schedule = vec![0usize; depth];

    loop {
        // Replay this schedule.
        let mut tm = factory();
        assert_eq!(tm.process_count(), n, "factory must match scripts");
        let mut clients: Vec<Client> = scripts.iter().cloned().map(Client::new).collect();
        let mut history = History::new();
        for &k in &schedule {
            let p = ProcessId(k);
            if tm.has_pending(p) {
                if let Some(resp) = tm.poll(p) {
                    history.push(Event::response(p, resp));
                    clients[k].observe(resp);
                }
                continue;
            }
            let inv = clients[k].next_invocation();
            history.push(Event::invocation(p, inv));
            match tm.invoke(p, inv) {
                Outcome::Response(resp) => {
                    history.push(Event::response(p, resp));
                    clients[k].observe(resp);
                }
                Outcome::Pending => {}
            }
        }
        exploration.schedules += 1;

        // Certify; fall back to the exact checker on rejection.
        let mut fast = IncrementalChecker::new(Mode::Opacity);
        if let Err(reject) = fast.push_all(history.iter().copied()) {
            exploration.exact_fallbacks += 1;
            let fast_reject_at = reject.position;
            match check_opacity(&history) {
                Ok(SafetyVerdict::Satisfied { .. }) => {}
                Ok(SafetyVerdict::Violated) => {
                    exploration.violations.push(Violation {
                        schedule: schedule.iter().copied().map(ProcessId).collect(),
                        history: history.clone(),
                        detail: "no legal sequential witness exists".to_string(),
                        fast_reject_at,
                    });
                }
                Err(e) => {
                    exploration.violations.push(Violation {
                        schedule: schedule.iter().copied().map(ProcessId).collect(),
                        history: history.clone(),
                        detail: format!("exact check infeasible: {e}"),
                        fast_reject_at,
                    });
                }
            }
        }

        // Next schedule in lexicographic order.
        let mut i = depth;
        loop {
            if i == 0 {
                return exploration;
            }
            i -= 1;
            schedule[i] += 1;
            if schedule[i] < n {
                break;
            }
            schedule[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_automata::FgpVariant;
    use tm_core::TVarId;
    use tm_stm::{Dstm, FgpTm, GlobalLock, NOrec, Ostm, TinyStm, Tl2};

    const X: TVarId = TVarId(0);

    fn two_increments() -> Vec<ClientScript> {
        vec![ClientScript::increment(X), ClientScript::increment(X)]
    }

    #[test]
    fn fgp_all_histories_opaque_two_processes() {
        for variant in [FgpVariant::Strict, FgpVariant::CpOnly] {
            let result =
                explore_schedules(|| Box::new(FgpTm::new(2, 1, variant)), &two_increments(), 9);
            assert_eq!(result.schedules, 512);
            assert!(result.all_opaque(), "{variant:?}: {:?}", result.violations);
        }
    }

    #[test]
    fn literal_fgp_violations_are_found_by_exploration() {
        // The model checker finds the aborted-write leak of the literal
        // formal rules without any hand-crafted scenario: some schedule of
        // two increment clients exposes it.
        let result = explore_schedules(
            || tm_stm::literal_fgp(2, 1),
            &[
                ClientScript::increment(X),
                // A client writing a distinguishable constant.
                ClientScript::new(vec![
                    crate::workload::PlannedOp::Read(X),
                    crate::workload::PlannedOp::Write(X, 5),
                ]),
            ],
            10,
        );
        assert!(
            !result.all_opaque(),
            "expected the literal-Fgp leak to surface within depth 10"
        );
        // Violations surface their shortest failing prefix.
        for v in &result.violations {
            assert!(v.fast_reject_at < v.history.len());
        }
    }

    type Factory = Box<dyn Fn() -> BoxedTm>;

    #[test]
    fn every_catalog_tm_is_opaque_at_depth_eight() {
        let factories: Vec<(&str, Factory)> = vec![
            ("tl2", Box::new(|| Box::new(Tl2::new(2, 1)) as BoxedTm)),
            ("tiny", Box::new(|| Box::new(TinyStm::new(2, 1)) as BoxedTm)),
            ("norec", Box::new(|| Box::new(NOrec::new(2, 1)) as BoxedTm)),
            ("ostm", Box::new(|| Box::new(Ostm::new(2, 1)) as BoxedTm)),
            ("dstm", Box::new(|| Box::new(Dstm::new(2, 1)) as BoxedTm)),
            (
                "global-lock",
                Box::new(|| Box::new(GlobalLock::new(2, 1)) as BoxedTm),
            ),
        ];
        for (name, factory) in factories {
            let result = explore_schedules(&*factory, &two_increments(), 8);
            assert!(result.all_opaque(), "{name}: {:?}", result.violations);
        }
    }

    #[test]
    fn three_process_exploration() {
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::increment(X),
            ClientScript::read_both(X, TVarId(1)),
        ];
        let result = explore_schedules(
            || Box::new(FgpTm::new(3, 2, FgpVariant::CpOnly)),
            &scripts,
            7,
        );
        assert_eq!(result.schedules, 3usize.pow(7));
        assert!(result.all_opaque());
    }

    #[test]
    fn dfs_matches_naive_exactly_on_an_opaque_tm() {
        let scripts = two_increments();
        let naive = explore_schedules_naive(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            8,
        );
        let dfs = explore_with(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &ExploreConfig::new(8).sequential(),
        );
        assert_eq!(naive, dfs);
    }

    #[test]
    fn dfs_matches_naive_exactly_on_the_buggy_tm() {
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::new(vec![
                crate::workload::PlannedOp::Read(X),
                crate::workload::PlannedOp::Write(X, 5),
            ]),
        ];
        let naive = explore_schedules_naive(|| tm_stm::literal_fgp(2, 1), &scripts, 9);
        let dfs = explore_with(
            || tm_stm::literal_fgp(2, 1),
            &scripts,
            &ExploreConfig::new(9).sequential(),
        );
        assert!(!naive.all_opaque());
        assert_eq!(naive, dfs);
    }

    #[test]
    fn parallel_split_depths_do_not_change_the_report() {
        let scripts = two_increments();
        let base = explore_with(
            || Box::new(Tl2::new(2, 1)),
            &scripts,
            &ExploreConfig::new(9).sequential(),
        );
        for split in [0, 1, 3, 5, 9] {
            let par = explore_with(
                || Box::new(Tl2::new(2, 1)),
                &scripts,
                &ExploreConfig::new(9).with_split_depth(split),
            );
            assert_eq!(base, par, "split depth {split}");
        }
    }

    #[test]
    fn sleep_sets_prune_but_preserve_verdicts() {
        // Two processes on disjoint variables: almost everything commutes.
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::increment(TVarId(1)),
        ];
        let full = explore_with(
            || Box::new(Tl2::new(2, 2)),
            &scripts,
            &ExploreConfig::new(8).sequential(),
        );
        let pruned = explore_with(
            || Box::new(Tl2::new(2, 2)),
            &scripts,
            &ExploreConfig::new(8).sequential().with_sleep_sets(),
        );
        assert!(pruned.schedules < full.schedules);
        assert!(pruned.pruned_subtrees > 0);
        assert_eq!(full.all_opaque(), pruned.all_opaque());
    }

    #[test]
    fn sleep_sets_disable_for_tms_without_the_commutation_contract() {
        // The global-lock TM acquires the global lock on its first
        // operation, and TinySTM's aborts roll back (and unlock) the
        // transaction's whole write set across variables — in both
        // cases disjoint-variable steps do NOT commute, so the explorer
        // must ignore the pruning request and visit every schedule.
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::increment(TVarId(1)),
        ];
        let factories: Vec<(&str, Factory)> = vec![
            (
                "global-lock",
                Box::new(|| Box::new(GlobalLock::new(2, 2)) as BoxedTm),
            ),
            ("tiny", Box::new(|| Box::new(TinyStm::new(2, 2)) as BoxedTm)),
        ];
        for (name, factory) in factories {
            let pruned = explore_with(
                &*factory,
                &scripts,
                &ExploreConfig::new(8).sequential().with_sleep_sets(),
            );
            assert_eq!(pruned.schedules, 1 << 8, "{name}");
            assert_eq!(pruned.pruned_subtrees, 0, "{name}");
            let full = explore_with(&*factory, &scripts, &ExploreConfig::new(8).sequential());
            assert_eq!(full, pruned, "{name}");
        }
    }

    #[test]
    fn dedup_replays_subtrees_but_reports_identically() {
        let scripts = two_increments();
        let full = explore_with(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &ExploreConfig::new(10).sequential(),
        );
        let deduped = explore_with(
            || Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)),
            &scripts,
            &ExploreConfig::new(10).sequential().with_dedup(),
        );
        assert!(deduped.dedup_hits > 0, "the increment workload must merge");
        assert_eq!(full.report(), deduped.report());
        assert_eq!(deduped.schedules, 1 << 10, "hits still count every leaf");
    }

    #[test]
    fn dedup_still_catches_the_buggy_tm_with_identical_violations() {
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::new(vec![
                crate::workload::PlannedOp::Read(X),
                crate::workload::PlannedOp::Write(X, 5),
            ]),
        ];
        let full = explore_with(
            || tm_stm::literal_fgp(2, 1),
            &scripts,
            &ExploreConfig::new(10).sequential(),
        );
        let deduped = explore_with(
            || tm_stm::literal_fgp(2, 1),
            &scripts,
            &ExploreConfig::new(10).sequential().with_dedup(),
        );
        assert!(!full.all_opaque());
        assert_eq!(full.report(), deduped.report());
    }

    #[test]
    fn dedup_composes_with_sleep_sets_and_parallelism() {
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::increment(TVarId(1)),
        ];
        let base = explore_with(
            || Box::new(Tl2::new(2, 2)),
            &scripts,
            &ExploreConfig::new(9).sequential().with_sleep_sets(),
        );
        let deduped = explore_with(
            || Box::new(Tl2::new(2, 2)),
            &scripts,
            &ExploreConfig::new(9)
                .sequential()
                .with_sleep_sets()
                .with_dedup(),
        );
        assert_eq!(base.report(), deduped.report());
        assert_eq!(base.pruned_subtrees, deduped.pruned_subtrees);
        let parallel = explore_with(
            || Box::new(Tl2::new(2, 2)),
            &scripts,
            &ExploreConfig::new(9)
                .with_split_depth(3)
                .with_sleep_sets()
                .with_dedup(),
        );
        assert_eq!(base.report(), parallel.report());
    }

    #[test]
    fn sleep_sets_still_catch_the_buggy_tm() {
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::new(vec![
                crate::workload::PlannedOp::Read(X),
                crate::workload::PlannedOp::Write(X, 5),
            ]),
        ];
        let pruned = explore_with(
            || tm_stm::literal_fgp(2, 1),
            &scripts,
            &ExploreConfig::new(10).with_sleep_sets(),
        );
        assert!(
            !pruned.all_opaque(),
            "pruning must preserve the violation verdict"
        );
    }
}
