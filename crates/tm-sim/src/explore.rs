//! Bounded-exhaustive interleaving exploration (the model checker).
//!
//! Theorem 3 claims **every** finite history of `Fgp` is opaque. For an
//! automaton-level ∀-claim the executable analogue is bounded-exhaustive
//! checking: enumerate *all* schedules of `n` deterministic clients up to
//! a depth, replay each against a fresh TM instance, and verify the
//! produced history. Acceptance uses the fast commit-order certifier and
//! falls back to the exact witness search on rejection, so every reported
//! violation is definitive.

use tm_core::{Event, History, ProcessId};
use tm_safety::{check_opacity, IncrementalChecker, Mode, SafetyVerdict};
use tm_stm::{BoxedTm, Outcome};

use crate::workload::{Client, ClientScript};

/// A definitive safety violation found during exploration.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The schedule (process per step) that produced the history.
    pub schedule: Vec<ProcessId>,
    /// The offending history.
    pub history: History,
    /// Why it is not opaque.
    pub detail: String,
}

/// Outcome of an exploration.
#[derive(Debug, Clone, Default)]
pub struct Exploration {
    /// Complete schedules replayed.
    pub schedules: usize,
    /// Histories that needed the exact checker (fast path rejected).
    pub exact_fallbacks: usize,
    /// Definitive opacity violations.
    pub violations: Vec<Violation>,
}

impl Exploration {
    /// Whether every explored history was opaque.
    pub fn all_opaque(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Explores every schedule of length `depth` over `scripts.len()`
/// processes against TMs built by `factory`, checking opacity of every
/// produced history (and thereby of every prefix — the certifier is
/// incremental).
///
/// Cost is `processes^depth` replays of `depth` steps each; keep
/// `depth ≲ 12` for 2 processes, `≲ 9` for 3.
pub fn explore_schedules<F>(factory: F, scripts: &[ClientScript], depth: usize) -> Exploration
where
    F: Fn() -> BoxedTm,
{
    let n = scripts.len();
    assert!(n > 0, "need at least one process");
    let mut exploration = Exploration::default();
    let mut schedule = vec![0usize; depth];

    loop {
        // Replay this schedule.
        let mut tm = factory();
        assert_eq!(tm.process_count(), n, "factory must match scripts");
        let mut clients: Vec<Client> =
            scripts.iter().cloned().map(Client::new).collect();
        let mut history = History::new();
        for &k in &schedule {
            let p = ProcessId(k);
            if tm.has_pending(p) {
                if let Some(resp) = tm.poll(p) {
                    history.push(Event::response(p, resp));
                    clients[k].observe(resp);
                }
                continue;
            }
            let inv = clients[k].next_invocation();
            history.push(Event::invocation(p, inv));
            match tm.invoke(p, inv) {
                Outcome::Response(resp) => {
                    history.push(Event::response(p, resp));
                    clients[k].observe(resp);
                }
                Outcome::Pending => {}
            }
        }
        exploration.schedules += 1;

        // Certify; fall back to the exact checker on rejection.
        let mut fast = IncrementalChecker::new(Mode::Opacity);
        if fast.push_all(history.iter().copied()).is_err() {
            exploration.exact_fallbacks += 1;
            match check_opacity(&history) {
                Ok(SafetyVerdict::Satisfied { .. }) => {}
                Ok(SafetyVerdict::Violated) => {
                    exploration.violations.push(Violation {
                        schedule: schedule.iter().copied().map(ProcessId).collect(),
                        history: history.clone(),
                        detail: "no legal sequential witness exists".to_string(),
                    });
                }
                Err(e) => {
                    exploration.violations.push(Violation {
                        schedule: schedule.iter().copied().map(ProcessId).collect(),
                        history: history.clone(),
                        detail: format!("exact check infeasible: {e}"),
                    });
                }
            }
        }

        // Next schedule in lexicographic order.
        let mut i = depth;
        loop {
            if i == 0 {
                return exploration;
            }
            i -= 1;
            schedule[i] += 1;
            if schedule[i] < n {
                break;
            }
            schedule[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_automata::FgpVariant;
    use tm_core::TVarId;
    use tm_stm::{Dstm, FgpTm, GlobalLock, NOrec, Ostm, TinyStm, Tl2};

    const X: TVarId = TVarId(0);

    fn two_increments() -> Vec<ClientScript> {
        vec![ClientScript::increment(X), ClientScript::increment(X)]
    }

    #[test]
    fn fgp_all_histories_opaque_two_processes() {
        for variant in [FgpVariant::Strict, FgpVariant::CpOnly] {
            let result = explore_schedules(
                || Box::new(FgpTm::new(2, 1, variant)),
                &two_increments(),
                9,
            );
            assert_eq!(result.schedules, 512);
            assert!(result.all_opaque(), "{variant:?}: {:?}", result.violations);
        }
    }

    #[test]
    fn literal_fgp_violations_are_found_by_exploration() {
        // The model checker finds the aborted-write leak of the literal
        // formal rules without any hand-crafted scenario: some schedule of
        // two increment clients exposes it.
        let result = explore_schedules(
            || tm_stm::literal_fgp(2, 1),
            &[
                ClientScript::increment(X),
                // A client writing a distinguishable constant.
                ClientScript::new(vec![
                    crate::workload::PlannedOp::Read(X),
                    crate::workload::PlannedOp::Write(X, 5),
                ]),
            ],
            10,
        );
        assert!(
            !result.all_opaque(),
            "expected the literal-Fgp leak to surface within depth 10"
        );
    }

    #[test]
    fn every_catalog_tm_is_opaque_at_depth_eight() {
        let factories: Vec<(&str, Box<dyn Fn() -> BoxedTm>)> = vec![
            ("tl2", Box::new(|| Box::new(Tl2::new(2, 1)) as BoxedTm)),
            ("tiny", Box::new(|| Box::new(TinyStm::new(2, 1)) as BoxedTm)),
            ("norec", Box::new(|| Box::new(NOrec::new(2, 1)) as BoxedTm)),
            ("ostm", Box::new(|| Box::new(Ostm::new(2, 1)) as BoxedTm)),
            ("dstm", Box::new(|| Box::new(Dstm::new(2, 1)) as BoxedTm)),
            (
                "global-lock",
                Box::new(|| Box::new(GlobalLock::new(2, 1)) as BoxedTm),
            ),
        ];
        for (name, factory) in factories {
            let result = explore_schedules(&*factory, &two_increments(), 8);
            assert!(result.all_opaque(), "{name}: {:?}", result.violations);
        }
    }

    #[test]
    fn three_process_exploration() {
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::increment(X),
            ClientScript::read_both(X, TVarId(1)),
        ];
        let result = explore_schedules(
            || Box::new(FgpTm::new(3, 2, FgpVariant::CpOnly)),
            &scripts,
            7,
        );
        assert_eq!(result.schedules, 3usize.pow(7));
        assert!(result.all_opaque());
    }
}
