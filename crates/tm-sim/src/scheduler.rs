//! Schedulers: who moves next.
//!
//! The paper's environment includes a scheduler that, at every point,
//! decides which process's event reaches the TM; processes and TM have no
//! control over it. [`Scheduler`] implementations cover the fair cases
//! (round-robin, seeded-random, weighted); the *adversarial* scheduler is
//! the `tm-adversary` crate, and crash/parasitic faults are injected by
//! [`crate::faults::FaultPlan`] by filtering eligibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tm_core::ProcessId;

/// Picks the next process to step among the currently eligible ones.
pub trait Scheduler {
    /// Chooses one of `eligible` (never empty). `step` is the global step
    /// number, usable for time-varying policies.
    fn pick(&mut self, step: usize, eligible: &[ProcessId]) -> ProcessId;
}

/// Fair round-robin over process indices.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, _step: usize, eligible: &[ProcessId]) -> ProcessId {
        // Find the next eligible process at or after the cursor.
        let chosen = eligible
            .iter()
            .copied()
            .find(|p| p.index() >= self.cursor)
            .unwrap_or(eligible[0]);
        self.cursor = chosen.index() + 1;
        chosen
    }
}

/// Uniform random choice with a fixed seed (reproducible).
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a seeded random scheduler.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, _step: usize, eligible: &[ProcessId]) -> ProcessId {
        eligible[self.rng.gen_range(0..eligible.len())]
    }
}

/// Weighted random choice: process `k` is scheduled proportionally to
/// `weights[k]` (processes with zero weight only run if nothing else is
/// eligible). Models asymmetric speeds — a nearly-starved slow process.
#[derive(Debug, Clone)]
pub struct WeightedScheduler {
    weights: Vec<u32>,
    rng: StdRng,
}

impl WeightedScheduler {
    /// Creates a weighted scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn new(weights: Vec<u32>, seed: u64) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        WeightedScheduler {
            weights,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for WeightedScheduler {
    fn pick(&mut self, _step: usize, eligible: &[ProcessId]) -> ProcessId {
        let total: u64 = eligible
            .iter()
            .map(|p| u64::from(*self.weights.get(p.index()).unwrap_or(&1)))
            .sum();
        if total == 0 {
            return eligible[0];
        }
        let mut roll = self.rng.gen_range(0..total);
        for &p in eligible {
            let w = u64::from(*self.weights.get(p.index()).unwrap_or(&1));
            if roll < w {
                return p;
            }
            roll -= w;
        }
        eligible[eligible.len() - 1]
    }
}

/// Replays a fixed schedule (used by the model checker and by regression
/// tests that pin an interleaving).
#[derive(Debug, Clone)]
pub struct FixedSchedule {
    schedule: Vec<ProcessId>,
    position: usize,
}

impl FixedSchedule {
    /// Creates a scheduler replaying `schedule`; after the schedule is
    /// exhausted it falls back to the first eligible process.
    pub fn new(schedule: Vec<ProcessId>) -> Self {
        FixedSchedule {
            schedule,
            position: 0,
        }
    }
}

impl Scheduler for FixedSchedule {
    fn pick(&mut self, _step: usize, eligible: &[ProcessId]) -> ProcessId {
        while self.position < self.schedule.len() {
            let p = self.schedule[self.position];
            self.position += 1;
            if eligible.contains(&p) {
                return p;
            }
        }
        eligible[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<ProcessId> {
        v.iter().copied().map(ProcessId).collect()
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = RoundRobin::new();
        let eligible = ids(&[0, 1, 2]);
        let picks: Vec<usize> = (0..6).map(|i| s.pick(i, &eligible).index()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_ineligible() {
        let mut s = RoundRobin::new();
        assert_eq!(s.pick(0, &ids(&[0, 2])).index(), 0);
        assert_eq!(s.pick(1, &ids(&[0, 2])).index(), 2);
        assert_eq!(s.pick(2, &ids(&[0, 2])).index(), 0);
    }

    #[test]
    fn random_scheduler_is_reproducible() {
        let eligible = ids(&[0, 1, 2, 3]);
        let picks = |seed| {
            let mut s = RandomScheduler::new(seed);
            (0..20)
                .map(|i| s.pick(i, &eligible).index())
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8));
    }

    #[test]
    fn random_scheduler_eventually_picks_everyone() {
        let mut s = RandomScheduler::new(3);
        let eligible = ids(&[0, 1, 2]);
        let mut seen = [false; 3];
        for i in 0..100 {
            seen[s.pick(i, &eligible).index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn weighted_scheduler_respects_weights() {
        let mut s = WeightedScheduler::new(vec![1, 99], 5);
        let eligible = ids(&[0, 1]);
        let p1_picks = (0..1000)
            .filter(|&i| s.pick(i, &eligible).index() == 1)
            .count();
        assert!(p1_picks > 900, "heavy process picked {p1_picks}/1000");
    }

    #[test]
    fn fixed_schedule_replays_then_falls_back() {
        let mut s = FixedSchedule::new(ids(&[1, 1, 0]));
        let eligible = ids(&[0, 1]);
        assert_eq!(s.pick(0, &eligible).index(), 1);
        assert_eq!(s.pick(1, &eligible).index(), 1);
        assert_eq!(s.pick(2, &eligible).index(), 0);
        assert_eq!(s.pick(3, &eligible).index(), 0); // fallback
    }
}
