//! Fault injection: crashes and parasitic turns.
//!
//! The paper's fault-prone systems allow any number of processes to crash
//! (stop taking steps forever) or to be parasitic (keep executing
//! operations but never attempt to commit). Both are *schedule-level*
//! phenomena — the TM cannot distinguish a crashed process from a slow
//! one — so they are injected at the scheduler layer:
//!
//! * a **crash** at step `t` removes the process from the eligible set of
//!   every step `≥ t`;
//! * a **parasitic turn** at step `t` replaces the process's client with
//!   an endless read-only loop that never issues `tryC`.
//!
//! Two layers consume this module:
//!
//! * the concrete simulation loop ([`crate::runner::simulate`]) replays a
//!   fixed [`FaultPlan`] — one chosen adversary;
//! * both model checkers quantify over *all* fault placements a
//!   [`FaultConfig`] allows: `crash(p)` / `parasite(p)` become
//!   scheduler-level transitions of the search, explored exhaustively
//!   like any process step, and each witness (a safety
//!   [`crate::explore::Violation`] or a liveness
//!   [`crate::livecheck::LassoFinding`]) carries the concrete
//!   [`FaultPlan`] its branch chose. The per-branch bookkeeping is a
//!   [`FaultState`] — the crashed/parasitic masks plus the remaining
//!   crash budget — which folds into memo keys and graph-node identities
//!   so dedup stays sound across fault placements.

use serde::{Deserialize, Serialize};

use tm_core::{ProcessId, TVarId};
use tm_telemetry::Json;

use crate::workload::{ClientScript, PlannedOp};

/// A single injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// The process takes no steps at or after the given step.
    Crash {
        /// The affected process.
        process: ProcessId,
        /// The global step at which the process disappears.
        at_step: usize,
    },
    /// The process switches to an endless loop of reads and writes,
    /// never invoking `tryC` again.
    Parasitic {
        /// The affected process.
        process: ProcessId,
        /// The global step at which the switch happens.
        at_step: usize,
    },
}

impl Fault {
    /// The process affected by the fault.
    pub fn process(&self) -> ProcessId {
        match *self {
            Fault::Crash { process, .. } | Fault::Parasitic { process, .. } => process,
        }
    }

    /// The step at which the fault takes effect.
    pub fn at_step(&self) -> usize {
        match *self {
            Fault::Crash { at_step, .. } | Fault::Parasitic { at_step, .. } => at_step,
        }
    }
}

/// What fault placements a model-checking run quantifies over.
///
/// `FaultConfig::none()` (the default) keeps both checkers byte-identical
/// to fault-free exploration: no fault transitions exist and no fault
/// state is folded into any key. With `max_crashes > 0` the scheduler
/// gains a `crash(p)` transition per live process while the crash budget
/// lasts; with `allow_parasitic` it gains a `parasite(p)` transition per
/// live, not-yet-parasitic process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// How many crashes the adversary may inject (0 disables crashes).
    pub max_crashes: usize,
    /// Whether the adversary may turn processes parasitic.
    pub allow_parasitic: bool,
}

impl FaultConfig {
    /// No faults: the checkers explore exactly the fault-free space.
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// Allows up to `max_crashes` crashes.
    pub fn with_crashes(max_crashes: usize) -> Self {
        FaultConfig {
            max_crashes,
            ..FaultConfig::default()
        }
    }

    /// Allows parasitic turns (builder style).
    pub fn and_parasitic(mut self) -> Self {
        self.allow_parasitic = true;
        self
    }

    /// Whether any fault transition exists at all.
    pub fn enabled(&self) -> bool {
        self.max_crashes > 0 || self.allow_parasitic
    }
}

/// The per-branch fault bookkeeping of a fault-quantified search: which
/// processes have crashed, which have turned parasitic. Together with
/// the [`FaultConfig`] (fixed per run) this determines the remaining
/// crash budget, so the pair of masks is the *complete* key material a
/// memo key or graph-node identity needs to stay sound across fault
/// placements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FaultState {
    /// Bitmask of crashed processes.
    pub crashed: u64,
    /// Bitmask of processes turned parasitic by a fault transition.
    pub parasitic: u64,
}

impl FaultState {
    /// The fault-free state.
    pub fn none() -> Self {
        FaultState::default()
    }

    /// Whether `k` has crashed.
    pub fn is_crashed(&self, k: usize) -> bool {
        self.crashed & (1 << k) != 0
    }

    /// Whether the adversary may still crash process `k` under `config`.
    pub fn can_crash(&self, config: &FaultConfig, k: usize) -> bool {
        (self.crashed.count_ones() as usize) < config.max_crashes && !self.is_crashed(k)
    }

    /// Whether the adversary may turn process `k` parasitic under
    /// `config`.
    pub fn can_parasite(&self, config: &FaultConfig, k: usize) -> bool {
        config.allow_parasitic && !self.is_crashed(k) && self.parasitic & (1 << k) == 0
    }

    /// Marks `k` crashed.
    pub fn crash(&mut self, k: usize) {
        self.crashed |= 1 << k;
    }

    /// Marks `k` parasitic.
    pub fn parasite(&mut self, k: usize) {
        self.parasitic |= 1 << k;
    }

    /// A 64-bit key folding both masks, for memo keys and digests. Zero
    /// iff fault-free, so fault-free runs hash exactly as before.
    pub fn key(&self) -> u64 {
        // The masks are ≤ 64-process wide; rotate one so the pair packs
        // injectively for any realistic process count (n ≤ 32 gives a
        // perfect pack; beyond that the rotation still separates all
        // states reachable under distinct masks in practice, and the
        // clients digest disambiguates parasitic cursors anyway).
        self.crashed ^ self.parasitic.rotate_left(32)
    }
}

/// A set of faults to inject into a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// No faults: every process is correct.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan from an explicit fault list — how the checkers package the
    /// fault transitions of a witness branch (`at_step` indexes into the
    /// witness schedule, which carries process steps only).
    pub fn from_faults(faults: Vec<Fault>) -> Self {
        FaultPlan { faults }
    }

    /// Adds a crash of `process` at `at_step`.
    pub fn crash(mut self, process: ProcessId, at_step: usize) -> Self {
        self.faults.push(Fault::Crash { process, at_step });
        self
    }

    /// Adds a parasitic turn of `process` at `at_step`.
    pub fn parasitic(mut self, process: ProcessId, at_step: usize) -> Self {
        self.faults.push(Fault::Parasitic { process, at_step });
        self
    }

    /// The planned faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether `process` has crashed by `step`.
    pub fn is_crashed(&self, process: ProcessId, step: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::Crash { .. }) && f.process() == process && step >= f.at_step()
        })
    }

    /// The parasitic fault of `process` triggering exactly at `step`, if
    /// any.
    pub fn parasitic_turn_at(&self, process: ProcessId, step: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::Parasitic { .. }) && f.process() == process && f.at_step() == step
        })
    }

    /// Whether `process` has turned parasitic at or before `step`
    /// (parasitic turns are sticky).
    pub fn is_parasitic(&self, process: ProcessId, step: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::Parasitic { .. }) && f.process() == process && step >= f.at_step()
        })
    }

    /// Whether `process` is scheduled as parasitic at some point.
    pub fn is_eventually_parasitic(&self, process: ProcessId) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::Parasitic { .. }) && f.process() == process)
    }

    /// Processes unaffected by any fault (the *correct* processes of the
    /// planned run, assuming they keep retrying transactions).
    pub fn correct_processes(&self, total: usize) -> Vec<ProcessId> {
        (0..total)
            .map(ProcessId)
            .filter(|p| !self.faults.iter().any(|f| f.process() == *p))
            .collect()
    }

    /// Whether the plan injects no fault at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The plan as a JSON array of `{"kind","p","at"}` objects — the
    /// wire form fault-carrying witness events use. (The in-repo serde
    /// shim carries no format crate, so the NDJSON layer serializes
    /// through [`tm_telemetry::Json`] directly.)
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.faults
                .iter()
                .map(|f| {
                    let kind = match f {
                        Fault::Crash { .. } => "crash",
                        Fault::Parasitic { .. } => "parasite",
                    };
                    Json::Obj(vec![
                        ("kind".to_string(), Json::str(kind)),
                        ("p".to_string(), Json::Int(f.process().0 as i64)),
                        ("at".to_string(), Json::Int(f.at_step() as i64)),
                    ])
                })
                .collect(),
        )
    }

    /// Parses the wire form produced by [`FaultPlan::to_json`]. Entries
    /// with an unknown kind or missing fields are rejected.
    pub fn from_json(json: &Json) -> Result<FaultPlan, String> {
        let Json::Arr(items) = json else {
            return Err("fault plan is not a JSON array".to_string());
        };
        let mut plan = FaultPlan::none();
        for item in items {
            let p = item
                .get("p")
                .and_then(Json::as_int)
                .ok_or_else(|| "fault entry missing `p`".to_string())?;
            let at = item
                .get("at")
                .and_then(Json::as_int)
                .ok_or_else(|| "fault entry missing `at`".to_string())?;
            let (process, at_step) = (ProcessId(p as usize), at as usize);
            match item.get("kind").and_then(Json::as_str) {
                Some("crash") => plan = plan.crash(process, at_step),
                Some("parasite") => plan = plan.parasitic(process, at_step),
                other => return Err(format!("unknown fault kind {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// The endless read-only loop a parasitic process runs: reads of `x`
/// forever, no `tryC`. (Liveness classification only needs event kinds, so
/// reads suffice.)
pub fn parasitic_script(x: TVarId) -> ClientScript {
    // A very long read-only plan; the simulation never reaches its tryC in
    // any bounded run, and the client loops it anyway.
    ClientScript::new(vec![PlannedOp::Read(x); usize::from(u16::MAX)])
}

#[cfg(test)]
mod tests {
    use super::*;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);

    #[test]
    fn crash_takes_effect_at_step() {
        let plan = FaultPlan::none().crash(P1, 10);
        assert!(!plan.is_crashed(P1, 9));
        assert!(plan.is_crashed(P1, 10));
        assert!(plan.is_crashed(P1, 1000));
        assert!(!plan.is_crashed(P2, 1000));
    }

    #[test]
    fn parasitic_turn_triggers_once() {
        let plan = FaultPlan::none().parasitic(P2, 5);
        assert!(plan.parasitic_turn_at(P2, 5));
        assert!(!plan.parasitic_turn_at(P2, 6));
        assert!(plan.is_eventually_parasitic(P2));
        assert!(!plan.is_eventually_parasitic(P1));
    }

    #[test]
    fn correct_processes_excludes_faulty() {
        let plan = FaultPlan::none().crash(P1, 3).parasitic(P2, 9);
        assert_eq!(plan.correct_processes(4), vec![ProcessId(2), ProcessId(3)]);
    }

    #[test]
    fn parasitic_script_never_commits() {
        let s = parasitic_script(TVarId(0));
        assert!(s.ops().iter().all(|op| matches!(op, PlannedOp::Read(_))));
        assert!(s.ops().len() > 10_000);
    }

    #[test]
    fn crash_at_step_zero_removes_the_process_entirely() {
        let plan = FaultPlan::none().crash(P1, 0);
        assert!(plan.is_crashed(P1, 0));
        assert!(plan.is_crashed(P1, 1));
        assert_eq!(plan.correct_processes(2), vec![P2]);
    }

    #[test]
    fn crash_and_parasitic_on_the_same_process_coexist() {
        // A process that turns parasitic and later crashes: both
        // predicates answer independently.
        let plan = FaultPlan::none().parasitic(P1, 2).crash(P1, 5);
        assert!(plan.parasitic_turn_at(P1, 2));
        assert!(plan.is_eventually_parasitic(P1));
        assert!(!plan.is_crashed(P1, 4));
        assert!(plan.is_crashed(P1, 5));
        assert_eq!(plan.correct_processes(2), vec![P2]);
    }

    #[test]
    fn unordered_plan_construction_is_order_insensitive() {
        // Builders appended out of step order answer the same queries.
        let forward = FaultPlan::none().crash(P1, 3).parasitic(P2, 1);
        let backward = FaultPlan::none().parasitic(P2, 1).crash(P1, 3);
        for step in 0..6 {
            for p in [P1, P2] {
                assert_eq!(forward.is_crashed(p, step), backward.is_crashed(p, step));
                assert_eq!(
                    forward.parasitic_turn_at(p, step),
                    backward.parasitic_turn_at(p, step)
                );
            }
        }
        assert_eq!(forward.correct_processes(3), backward.correct_processes(3));
    }

    // Round-trip property: every plan shape survives the wire form
    // (text → parse → re-render) unchanged. A small deterministic
    // generator walks a spread of plan shapes instead of a randomized
    // harness (the in-repo proptest shim has no generators for this).
    #[test]
    fn fault_plans_round_trip_through_json() {
        let mut plans = vec![FaultPlan::none()];
        for p in 0..4usize {
            for step in [0usize, 1, 7, 1000] {
                plans.push(FaultPlan::none().crash(ProcessId(p), step));
                plans.push(FaultPlan::none().parasitic(ProcessId(p), step));
                plans.push(
                    FaultPlan::none()
                        .crash(ProcessId(p), step)
                        .parasitic(ProcessId((p + 1) % 4), step + 2),
                );
            }
        }
        for plan in plans {
            let text = plan.to_json().to_string();
            let parsed = Json::parse(&text).expect("wire form parses");
            let back = FaultPlan::from_json(&parsed).expect("deserialize");
            assert_eq!(back, plan);
            // A second round trip is a fixpoint.
            assert_eq!(back.to_json().to_string(), text);
        }
    }

    #[test]
    fn fault_plan_wire_form_rejects_garbage() {
        assert!(FaultPlan::from_json(&Json::Null).is_err());
        let bad_kind = Json::parse(r#"[{"kind":"melt","p":0,"at":1}]"#).expect("parse");
        assert!(FaultPlan::from_json(&bad_kind).is_err());
        let missing = Json::parse(r#"[{"kind":"crash","p":0}]"#).expect("parse");
        assert!(FaultPlan::from_json(&missing).is_err());
    }

    #[test]
    fn fault_config_gates_transitions() {
        for config in [
            FaultConfig::none(),
            FaultConfig::with_crashes(1),
            FaultConfig::with_crashes(2).and_parasitic(),
            FaultConfig::none().and_parasitic(),
        ] {
            assert_eq!(
                config.enabled(),
                config.max_crashes > 0 || config.allow_parasitic
            );
        }

        let config = FaultConfig::with_crashes(1).and_parasitic();
        let mut state = FaultState::none();
        assert!(state.can_crash(&config, 0));
        state.crash(0);
        // Budget spent: nobody else may crash, and a crashed process
        // cannot turn parasitic.
        assert!(!state.can_crash(&config, 1));
        assert!(!state.can_parasite(&config, 0));
        assert!(state.can_parasite(&config, 1));
        state.parasite(1);
        assert!(!state.can_parasite(&config, 1));
        assert_ne!(state.key(), FaultState::none().key());
        assert_eq!(FaultState::none().key(), 0);
    }
}
