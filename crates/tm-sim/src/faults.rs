//! Fault injection: crashes and parasitic turns.
//!
//! The paper's fault-prone systems allow any number of processes to crash
//! (stop taking steps forever) or to be parasitic (keep executing
//! operations but never attempt to commit). Both are *schedule-level*
//! phenomena — the TM cannot distinguish a crashed process from a slow
//! one — so they are injected in the simulation loop:
//!
//! * a **crash** at step `t` removes the process from the eligible set of
//!   every step `≥ t`;
//! * a **parasitic turn** at step `t` replaces the process's client with
//!   an endless read-only loop that never issues `tryC`.

use serde::{Deserialize, Serialize};

use tm_core::{ProcessId, TVarId};

use crate::workload::{ClientScript, PlannedOp};

/// A single injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// The process takes no steps at or after the given step.
    Crash {
        /// The affected process.
        process: ProcessId,
        /// The global step at which the process disappears.
        at_step: usize,
    },
    /// The process switches to an endless loop of reads and writes,
    /// never invoking `tryC` again.
    Parasitic {
        /// The affected process.
        process: ProcessId,
        /// The global step at which the switch happens.
        at_step: usize,
    },
}

impl Fault {
    /// The process affected by the fault.
    pub fn process(&self) -> ProcessId {
        match *self {
            Fault::Crash { process, .. } | Fault::Parasitic { process, .. } => process,
        }
    }

    /// The step at which the fault takes effect.
    pub fn at_step(&self) -> usize {
        match *self {
            Fault::Crash { at_step, .. } | Fault::Parasitic { at_step, .. } => at_step,
        }
    }
}

/// A set of faults to inject into a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// No faults: every process is correct.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a crash of `process` at `at_step`.
    pub fn crash(mut self, process: ProcessId, at_step: usize) -> Self {
        self.faults.push(Fault::Crash { process, at_step });
        self
    }

    /// Adds a parasitic turn of `process` at `at_step`.
    pub fn parasitic(mut self, process: ProcessId, at_step: usize) -> Self {
        self.faults.push(Fault::Parasitic { process, at_step });
        self
    }

    /// The planned faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether `process` has crashed by `step`.
    pub fn is_crashed(&self, process: ProcessId, step: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::Crash { .. }) && f.process() == process && step >= f.at_step()
        })
    }

    /// The parasitic fault of `process` triggering exactly at `step`, if
    /// any.
    pub fn parasitic_turn_at(&self, process: ProcessId, step: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::Parasitic { .. }) && f.process() == process && f.at_step() == step
        })
    }

    /// Whether `process` is scheduled as parasitic at some point.
    pub fn is_eventually_parasitic(&self, process: ProcessId) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::Parasitic { .. }) && f.process() == process)
    }

    /// Processes unaffected by any fault (the *correct* processes of the
    /// planned run, assuming they keep retrying transactions).
    pub fn correct_processes(&self, total: usize) -> Vec<ProcessId> {
        (0..total)
            .map(ProcessId)
            .filter(|p| !self.faults.iter().any(|f| f.process() == *p))
            .collect()
    }
}

/// The endless read-only loop a parasitic process runs: reads of `x`
/// forever, no `tryC`. (Liveness classification only needs event kinds, so
/// reads suffice.)
pub fn parasitic_script(x: TVarId) -> ClientScript {
    // A very long read-only plan; the simulation never reaches its tryC in
    // any bounded run, and the client loops it anyway.
    ClientScript::new(vec![PlannedOp::Read(x); usize::from(u16::MAX)])
}

#[cfg(test)]
mod tests {
    use super::*;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);

    #[test]
    fn crash_takes_effect_at_step() {
        let plan = FaultPlan::none().crash(P1, 10);
        assert!(!plan.is_crashed(P1, 9));
        assert!(plan.is_crashed(P1, 10));
        assert!(plan.is_crashed(P1, 1000));
        assert!(!plan.is_crashed(P2, 1000));
    }

    #[test]
    fn parasitic_turn_triggers_once() {
        let plan = FaultPlan::none().parasitic(P2, 5);
        assert!(plan.parasitic_turn_at(P2, 5));
        assert!(!plan.parasitic_turn_at(P2, 6));
        assert!(plan.is_eventually_parasitic(P2));
        assert!(!plan.is_eventually_parasitic(P1));
    }

    #[test]
    fn correct_processes_excludes_faulty() {
        let plan = FaultPlan::none().crash(P1, 3).parasitic(P2, 9);
        assert_eq!(plan.correct_processes(4), vec![ProcessId(2), ProcessId(3)]);
    }

    #[test]
    fn parasitic_script_never_commits() {
        let s = parasitic_script(TVarId(0));
        assert!(s.ops().iter().all(|op| matches!(op, PlannedOp::Read(_))));
        assert!(s.ops().len() > 10_000);
    }
}
