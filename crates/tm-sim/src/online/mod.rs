//! Streaming opacity certification at production traffic.
//!
//! This module is the consumer side of the sharded recorder
//! ([`tm_stm::concurrent::ShardedRecorder`]): a pipeline that certifies
//! a live multi-threaded execution *while it runs*, instead of
//! collecting a history and checking it afterwards. Three stages, each
//! on its own thread (plus the rayon pool):
//!
//! 1. **sealer** — polls the recorder's [`EventStream`] for the merged
//!    seq-contiguous prefix, feeds it to the [`Chunker`] (temporal cuts
//!    at quiescent points + conflict-component splits, both argued
//!    sound in the `tm_stm::concurrent` module docs), and groups sealed
//!    chunks into *epochs* of roughly [`OnlineConfig::epoch_events`]
//!    events;
//! 2. **certifier** — receives epochs in order and certifies each
//!    epoch's chunks in parallel via [`crate::engine::frontier::distribute`]:
//!    one [`IncrementalChecker`] per chunk, seeded with the chunk's
//!    frontier committed-state;
//! 3. **verdict fold** — per-chunk verdicts merge deterministically by
//!    taking the violation with the smallest global sequence number, so
//!    the reported first violation is independent of thread count and
//!    scheduling.
//!
//! The distance between the stages is observable: *checker lag* is the
//! number of epochs sealed but not yet certified, tallied as a
//! high-water mark in [`Counter::CheckerLagEpochs`] and streamed in the
//! NDJSON heartbeats, so `tm-obs tail` doubles as a live dashboard for
//! how far certification trails recording.
//!
//! The pipeline is sound but (like the incremental checker it feeds)
//! not complete: a reported violation means the committed transactions
//! cannot be serialized in commit order with reads explained by
//! committed state — the certificate this layer checks — and a clean
//! verdict means every chunk passed that test.

pub mod chunk;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tm_core::{EventKind, History, ProcessId, Response};
use tm_safety::{IncrementalChecker, Mode};
use tm_stm::concurrent::{atomically_sharded, EventStream, StampedEvent, StreamStatus};
use tm_telemetry::{Counter, Json, Telemetry};

use crate::engine::frontier::distribute;

pub use chunk::{Chunk, Chunker};

/// Configuration for the online certification pipeline.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// What the certifier checks: opacity (default) or strict
    /// serializability.
    pub mode: Mode,
    /// Target merged events per epoch; sealed chunks are dispatched to
    /// the certifier once at least this many events have accumulated.
    pub epoch_events: usize,
    /// Minimum events per temporal segment (passed to [`Chunker`];
    /// 1 = cut at every quiescent point).
    pub min_chunk_events: usize,
    /// Keep the merged history in the report (for differential tests;
    /// costs memory proportional to the run).
    pub keep_history: bool,
    /// Counter and NDJSON sink; the pipeline tallies
    /// [`Counter::EpochsSealed`], [`Counter::ChunksCertified`] and
    /// [`Counter::CheckerLagEpochs`] and heartbeats sustained ops/sec.
    pub telemetry: Telemetry,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            mode: Mode::Opacity,
            epoch_events: 4096,
            min_chunk_events: 64,
            keep_history: false,
            telemetry: Telemetry::off(),
        }
    }
}

/// A certification failure, located by global sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineViolation {
    /// The process whose event triggered the violation.
    pub process: ProcessId,
    /// Global sequence stamp of the offending event.
    pub seq: u64,
    /// Human-readable description from the incremental checker.
    pub detail: String,
}

/// The pipeline's final report.
#[derive(Debug)]
pub struct OnlineReport {
    /// First violation by global sequence number, if any.
    pub violation: Option<OnlineViolation>,
    /// Total merged events the sealer consumed.
    pub events: u64,
    /// Committed transactions observed in the stream.
    pub commits: u64,
    /// Aborted transactions observed in the stream.
    pub aborts: u64,
    /// Epochs dispatched to the certifier.
    pub epochs_sealed: u64,
    /// Chunks certified (across all epochs).
    pub chunks_certified: u64,
    /// High-water mark of epochs sealed but not yet certified.
    pub max_lag_epochs: u64,
    /// The merged history, when [`OnlineConfig::keep_history`] was set.
    pub history: Option<History>,
}

impl OnlineReport {
    /// Whether every chunk certified clean.
    pub fn certified_opaque(&self) -> bool {
        self.violation.is_none()
    }
}

/// Certifies one chunk: an [`IncrementalChecker`] seeded with the
/// chunk's frontier, fed the chunk's events in merged order. Returns
/// the first violation, located by global sequence stamp.
pub fn certify_chunk(mode: Mode, chunk: &Chunk) -> Option<OnlineViolation> {
    let mut checker = IncrementalChecker::with_frontier(mode, &chunk.frontier);
    for &(seq, event) in &chunk.events {
        if let Err(v) = checker.push(event) {
            let seq = chunk
                .events
                .get(v.position)
                .map_or(seq, |&(stamp, _)| stamp);
            return Some(OnlineViolation {
                process: v.process,
                seq,
                detail: v.detail,
            });
        }
    }
    None
}

/// Merges two optional violations, keeping the one earlier in the
/// merged order (smaller global sequence stamp).
fn earlier(a: Option<OnlineViolation>, b: Option<OnlineViolation>) -> Option<OnlineViolation> {
    match (a, b) {
        (Some(a), Some(b)) => Some(if a.seq <= b.seq { a } else { b }),
        (a, None) => a,
        (None, b) => b,
    }
}

struct SealerOut {
    events: u64,
    commits: u64,
    aborts: u64,
    epochs: u64,
    history: Option<History>,
}

struct CertifierOut {
    violation: Option<OnlineViolation>,
    chunks: u64,
    max_lag: u64,
}

/// The running pipeline: a sealer thread chunking the merged stream and
/// a certifier thread checking epochs on the rayon pool. Close the
/// recorder (dropping all shard writers first), then [`join`] for the
/// verdict.
///
/// [`join`]: OnlinePipeline::join
#[derive(Debug)]
pub struct OnlinePipeline {
    sealer: JoinHandle<SealerOut>,
    certifier: JoinHandle<CertifierOut>,
}

impl OnlinePipeline {
    /// Spawns the sealer and certifier threads over `stream`.
    pub fn spawn(stream: EventStream, config: OnlineConfig) -> OnlinePipeline {
        let sealed = Arc::new(AtomicU64::new(0));
        let certified = Arc::new(AtomicU64::new(0));
        let (epoch_tx, epoch_rx) = channel::<Vec<Chunk>>();

        let sealer = {
            let config = config.clone();
            let sealed = Arc::clone(&sealed);
            let certified = Arc::clone(&certified);
            std::thread::spawn(move || run_sealer(stream, &config, &sealed, &certified, &epoch_tx))
        };
        let certifier =
            { std::thread::spawn(move || run_certifier(&epoch_rx, &config, &sealed, &certified)) };
        OnlinePipeline { sealer, certifier }
    }

    /// Waits for both stages to drain and folds their outputs into the
    /// final report. Returns once the recorder has been closed and
    /// every sealed epoch is certified.
    pub fn join(self) -> OnlineReport {
        let sealer = self.sealer.join().expect("sealer thread panicked");
        let certifier = self.certifier.join().expect("certifier thread panicked");
        OnlineReport {
            violation: certifier.violation,
            events: sealer.events,
            commits: sealer.commits,
            aborts: sealer.aborts,
            epochs_sealed: sealer.epochs,
            chunks_certified: certifier.chunks,
            max_lag_epochs: certifier.max_lag,
            history: sealer.history,
        }
    }
}

fn run_sealer(
    mut stream: EventStream,
    config: &OnlineConfig,
    sealed: &AtomicU64,
    certified: &AtomicU64,
    epoch_tx: &Sender<Vec<Chunk>>,
) -> SealerOut {
    let start = Instant::now();
    let mut chunker = Chunker::new(config.min_chunk_events);
    let mut buf: Vec<StampedEvent> = Vec::new();
    let mut pending: Vec<Chunk> = Vec::new();
    let mut pending_events = 0usize;
    let mut out = SealerOut {
        events: 0,
        commits: 0,
        aborts: 0,
        epochs: 0,
        history: config.keep_history.then(History::new),
    };
    // Dispatches the accumulated chunks as one epoch. A send error
    // means the certifier hung up (it only does so after a panic); the
    // sealer keeps draining the stream so writers never block.
    fn dispatch(
        pending: &mut Vec<Chunk>,
        out: &mut SealerOut,
        sealed: &AtomicU64,
        telemetry: &Telemetry,
        epoch_tx: &Sender<Vec<Chunk>>,
    ) {
        out.epochs += 1;
        sealed.store(out.epochs, Ordering::Release);
        telemetry.add(Counter::EpochsSealed, 1);
        if epoch_tx.send(std::mem::take(pending)).is_err() {
            pending.clear();
        }
    }
    loop {
        let status = stream.poll(Duration::from_millis(1), &mut buf);
        for stamped in buf.drain(..) {
            out.events += 1;
            if let EventKind::Response(resp) = stamped.event.kind {
                match resp {
                    Response::Committed => out.commits += 1,
                    Response::Aborted => out.aborts += 1,
                    _ => {}
                }
            }
            if let Some(history) = &mut out.history {
                history.push(stamped.event);
            }
            let sealed_before = pending.len();
            chunker.push(stamped.seq, stamped.event, &mut pending);
            for chunk in &pending[sealed_before..] {
                pending_events += chunk.events.len();
            }
            // The epoch boundary is checked per event, not per poll: a
            // single poll can drain a large backlog, and one epoch per
            // backlog would make the lag gauge meaningless.
            if pending_events >= config.epoch_events {
                pending_events = 0;
                dispatch(&mut pending, &mut out, sealed, &config.telemetry, epoch_tx);
            }
        }
        let closed = status == StreamStatus::Closed;
        if closed {
            chunker.finish(&mut pending);
        }
        if closed && !pending.is_empty() {
            pending_events = 0;
            dispatch(&mut pending, &mut out, sealed, &config.telemetry, epoch_tx);
        }
        config.telemetry.heartbeat("online", || {
            let lag = out.epochs.saturating_sub(certified.load(Ordering::Acquire));
            vec![
                ("ops", Json::Int(out.events as i64)),
                (
                    "ops_per_sec",
                    Json::Num(out.events as f64 / start.elapsed().as_secs_f64().max(1e-9)),
                ),
                ("epochs_sealed", Json::Int(out.epochs as i64)),
                ("lag_epochs", Json::Int(lag as i64)),
            ]
        });
        if closed {
            return out;
        }
    }
}

fn run_certifier(
    epoch_rx: &Receiver<Vec<Chunk>>,
    config: &OnlineConfig,
    sealed: &AtomicU64,
    certified: &AtomicU64,
) -> CertifierOut {
    let mut out = CertifierOut {
        violation: None,
        chunks: 0,
        max_lag: 0,
    };
    let mut done = 0u64;
    while let Ok(epoch) = epoch_rx.recv() {
        let lag = sealed.load(Ordering::Acquire).saturating_sub(done);
        out.max_lag = out.max_lag.max(lag);
        config.telemetry.record_max(Counter::CheckerLagEpochs, lag);
        out.chunks += epoch.len() as u64;
        config
            .telemetry
            .add(Counter::ChunksCertified, epoch.len() as u64);
        let verdicts = distribute(epoch, |chunk| certify_chunk(config.mode, &chunk));
        // Epochs arrive in merged order and every event of epoch k
        // precedes every event of epoch k+1, so folding within the
        // epoch and keeping the first across epochs is the global
        // first-by-seq violation.
        if out.violation.is_none() {
            out.violation = verdicts.into_iter().fold(None, earlier);
        }
        done += 1;
        certified.store(done, Ordering::Release);
    }
    out
}

/// A bank-style contended workload for the online pipeline: `threads`
/// worker threads, each running `txs_per_thread` transactions against
/// `accounts` t-variables — a seeded xorshift mix of transfers
/// (read/read/write/write between two accounts) and audits (read a
/// window of accounts).
#[derive(Debug, Clone)]
pub struct OnlineWorkload {
    /// Worker threads (one recorder shard each).
    pub threads: usize,
    /// T-variables ("accounts") in the store.
    pub accounts: usize,
    /// Committed transactions per thread.
    pub txs_per_thread: u64,
    /// Workload seed (per-thread streams derive from it).
    pub seed: u64,
}

impl Default for OnlineWorkload {
    fn default() -> Self {
        OnlineWorkload {
            threads: 2,
            accounts: 8,
            txs_per_thread: 2_000,
            seed: 0x5eed_1e55,
        }
    }
}

#[inline]
fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Runs the bank workload on `tm` under the sharded recorder with the
/// online pipeline certifying concurrently, and returns the verdict.
/// Emits `run_start` and `verdict` NDJSON events (engine `"online"`)
/// plus the counter roll-up through the config's [`Telemetry`].
pub fn certify_workload<T>(tm: T, workload: &OnlineWorkload, config: OnlineConfig) -> OnlineReport
where
    T: tm_stm::concurrent::ConcurrentTm + Sync,
{
    assert!(workload.threads > 0, "need at least one worker thread");
    assert!(workload.accounts > 0, "need at least one account");
    let telemetry = config.telemetry.clone();
    let name = tm.name();
    telemetry.event(
        "run_start",
        &[
            ("engine", Json::str("online")),
            ("tm", Json::str(name)),
            ("processes", Json::Int(workload.threads as i64)),
            (
                "txs",
                Json::Int((workload.txs_per_thread * workload.threads as u64) as i64),
            ),
        ],
    );
    let (recorder, stream) =
        tm_stm::concurrent::ShardedRecorder::with_telemetry(tm, telemetry.clone());
    let pipeline = OnlinePipeline::spawn(stream, config);
    std::thread::scope(|scope| {
        for t in 0..workload.threads {
            let recorder = &recorder;
            let accounts = workload.accounts;
            let txs = workload.txs_per_thread;
            let mut rng = workload.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t as u64 + 1));
            scope.spawn(move || {
                let mut writer = recorder.shard(ProcessId(t));
                for _ in 0..txs {
                    let r = xorshift(&mut rng);
                    let a = (r as usize >> 8) % accounts;
                    let b = (r as usize >> 24) % accounts;
                    if r.is_multiple_of(4) && accounts > 1 {
                        // Audit: read a two-account window.
                        atomically_sharded(&mut writer, |tx| {
                            let x = tx.read(tm_core::TVarId(a))?;
                            let y = tx.read(tm_core::TVarId(b))?;
                            tx.write(tm_core::TVarId(a), x.wrapping_add(y) & 0xffff)
                        });
                    } else {
                        // Transfer: move one unit from `a` to `b`.
                        atomically_sharded(&mut writer, |tx| {
                            let x = tx.read(tm_core::TVarId(a))?;
                            let y = tx.read(tm_core::TVarId(b))?;
                            tx.write(tm_core::TVarId(a), x.wrapping_sub(1))?;
                            tx.write(tm_core::TVarId(b), y.wrapping_add(1))
                        });
                    }
                }
            });
        }
    });
    recorder.close();
    let report = pipeline.join();
    telemetry.event(
        "verdict",
        &[
            ("engine", Json::str("online")),
            ("tm", Json::str(name)),
            ("all_opaque", Json::Bool(report.certified_opaque())),
            ("ops", Json::Int(report.events as i64)),
            ("epochs", Json::Int(report.epochs_sealed as i64)),
            ("chunks", Json::Int(report.chunks_certified as i64)),
            ("max_lag_epochs", Json::Int(report.max_lag_epochs as i64)),
        ],
    );
    telemetry.emit_counters(name);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::TVarId;
    use tm_stm::concurrent::{atomically_sharded, ConcurrentBuggy, ConcurrentTl2, ShardedRecorder};

    fn pipeline_over<T, F>(tm: T, threads: usize, config: OnlineConfig, body: F) -> OnlineReport
    where
        T: tm_stm::concurrent::ConcurrentTm + Sync,
        F: Fn(&mut tm_stm::concurrent::ShardWriter<'_, T>, usize) + Sync,
    {
        let (recorder, stream) = ShardedRecorder::new(tm);
        let pipeline = OnlinePipeline::spawn(stream, config);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let recorder = &recorder;
                let body = &body;
                scope.spawn(move || {
                    let mut writer = recorder.shard(ProcessId(t));
                    body(&mut writer, t);
                });
            }
        });
        recorder.close();
        pipeline.join()
    }

    #[test]
    fn tl2_run_certifies_opaque_online() {
        let config = OnlineConfig {
            epoch_events: 32,
            min_chunk_events: 8,
            ..OnlineConfig::default()
        };
        let report = pipeline_over(ConcurrentTl2::new(4), 3, config, |writer, t| {
            for i in 0..40u64 {
                atomically_sharded(writer, |tx| {
                    let a = tx.read(TVarId((i as usize + t) % 4))?;
                    tx.write(TVarId((i as usize + t + 1) % 4), a + 1)
                });
            }
        });
        assert!(
            report.certified_opaque(),
            "TL2 flagged: {:?}",
            report.violation
        );
        assert_eq!(report.commits, 120);
        assert!(report.epochs_sealed >= 1);
        assert!(report.chunks_certified >= report.epochs_sealed);
        assert_eq!(report.events % 2, 0, "events pair up as inv/resp");
    }

    #[test]
    fn seeded_lost_update_is_flagged_online() {
        let config = OnlineConfig {
            epoch_events: 16,
            min_chunk_events: 1,
            ..OnlineConfig::default()
        };
        let report = pipeline_over(ConcurrentBuggy::new(1, 3), 1, config, |writer, _| {
            for _ in 0..6 {
                atomically_sharded(writer, |tx| {
                    let v = tx.read(TVarId(0))?;
                    tx.write(TVarId(0), v + 1)
                });
            }
        });
        let violation = report.violation.expect("lost update must be flagged");
        assert!(violation.seq > 0);
    }

    #[test]
    fn kept_history_matches_event_count() {
        let config = OnlineConfig {
            keep_history: true,
            ..OnlineConfig::default()
        };
        let report = pipeline_over(ConcurrentTl2::new(2), 2, config, |writer, _| {
            for _ in 0..5u64 {
                atomically_sharded(writer, |tx| {
                    let v = tx.read(TVarId(0))?;
                    tx.write(TVarId(1), v)
                });
            }
        });
        let history = report.history.expect("keep_history was set");
        assert_eq!(history.len() as u64, report.events);
        assert!(history.is_well_formed());
    }

    #[test]
    fn chunk_verdict_agrees_with_whole_history_checker() {
        let config = OnlineConfig {
            epoch_events: 8,
            min_chunk_events: 1,
            keep_history: true,
            ..OnlineConfig::default()
        };
        let report = pipeline_over(ConcurrentTl2::new(3), 2, config, |writer, t| {
            for i in 0..20u64 {
                atomically_sharded(writer, |tx| {
                    let a = tx.read(TVarId((i as usize + t) % 3))?;
                    tx.write(TVarId((i as usize + 2 * t) % 3), a + i)
                });
            }
        });
        let history = report.history.as_ref().expect("keep_history was set");
        let mut whole = IncrementalChecker::new(Mode::Opacity);
        let offline = whole.push_all(history.events().iter().copied());
        assert_eq!(
            offline.is_ok(),
            report.certified_opaque(),
            "chunked and whole-history verdicts must agree"
        );
    }
}
