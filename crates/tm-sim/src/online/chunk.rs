//! The chunker: cutting a merged history into independently
//! certifiable pieces.
//!
//! Input is the sequence-ordered event stream a
//! [`ShardedRecorder`](tm_stm::concurrent::ShardedRecorder) merges;
//! output is [`Chunk`]s, each carrying its events (with their global
//! sequence positions) and the sparse *frontier* committed-state its
//! checker is seeded with. Two cuts are applied, both argued sound in
//! the `tm_stm::concurrent` module docs:
//!
//! 1. **temporal cuts at quiescent points** — a segment is sealed only
//!    when no transaction is live, so every attempt falls entirely
//!    inside one segment and the committed state at the cut is
//!    unambiguous;
//! 2. **conflict-component splits** — within a segment, union-find over
//!    transactions and the t-variables they touch (dbcop's
//!    communication graph restricted to one segment) partitions the
//!    events into groups that share no t-variable; each group is a
//!    chunk certifiable without seeing the others.

use tm_core::{Event, EventKind, Invocation, TVarId, Value, INITIAL_VALUE};

/// One independently certifiable slice of the merged history.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Committed values at the chunk's start for the t-variables it
    /// touches (sparse; unlisted variables are untouched by the chunk).
    pub frontier: Vec<(TVarId, Value)>,
    /// The chunk's events with their global sequence positions, in
    /// merged order.
    pub events: Vec<(u64, Event)>,
}

/// Per-process state of the attempt currently being scanned.
#[derive(Debug, Clone, Default)]
struct LiveAttempt {
    /// Index into the segment's attempt table.
    attempt: usize,
    /// Buffered writes, applied to the running committed state if the
    /// attempt commits.
    writes: Vec<(TVarId, Value)>,
}

/// Union-find node parents (attempts ∪ t-variables).
#[derive(Debug, Default)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn make(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        id
    }

    fn find(&mut self, mut a: usize) -> usize {
        while self.parent[a] != a {
            self.parent[a] = self.parent[self.parent[a]];
            a = self.parent[a];
        }
        a
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Streaming history chunker. Feed events in merged order with
/// [`Chunker::push`]; sealed chunks accumulate into the caller's output
/// vector. [`Chunker::finish`] flushes the trailing segment.
#[derive(Debug)]
pub struct Chunker {
    /// Segments are only sealed at quiescent points once they hold at
    /// least this many events (1 = maximum chunking granularity).
    min_segment_events: usize,
    /// Running committed state (dense), advanced as segments seal.
    committed: Vec<Value>,
    /// Live attempt per process (dense by process index).
    live: Vec<Option<LiveAttempt>>,
    live_count: usize,
    /// Events of the open segment.
    segment: Vec<(u64, Event)>,
    /// Attempt index per segment event (parallel to `segment`).
    event_attempt: Vec<usize>,
    /// Per-attempt: (union-find node, touched t-variables).
    attempts: Vec<(usize, Vec<TVarId>)>,
    /// Union-find node per t-variable index, for the open segment.
    var_node: Vec<Option<usize>>,
    /// T-variables with a node in the open segment (to reset cheaply).
    segment_vars: Vec<usize>,
    /// Writes of the segment's committed attempts, in commit-event
    /// order; applied to `committed` when the segment seals (frontiers
    /// must reflect the state at the segment *start*).
    pending_commits: Vec<(TVarId, Value)>,
    nodes: UnionFind,
}

impl Chunker {
    /// Creates a chunker that seals segments of at least
    /// `min_segment_events` events (clamped to ≥ 1) at quiescent
    /// points.
    pub fn new(min_segment_events: usize) -> Self {
        Chunker {
            min_segment_events: min_segment_events.max(1),
            committed: Vec::new(),
            live: Vec::new(),
            live_count: 0,
            segment: Vec::new(),
            event_attempt: Vec::new(),
            attempts: Vec::new(),
            var_node: Vec::new(),
            segment_vars: Vec::new(),
            pending_commits: Vec::new(),
            nodes: UnionFind::default(),
        }
    }

    /// The committed value of `x` as of the last sealed segment.
    fn committed_value(&self, x: TVarId) -> Value {
        self.committed
            .get(x.index())
            .copied()
            .unwrap_or(INITIAL_VALUE)
    }

    fn var_node_for(&mut self, x: TVarId) -> usize {
        let j = x.index();
        if self.var_node.len() <= j {
            self.var_node.resize(j + 1, None);
        }
        if let Some(node) = self.var_node[j] {
            return node;
        }
        let node = self.nodes.make();
        self.var_node[j] = Some(node);
        self.segment_vars.push(j);
        node
    }

    /// Feeds the next merged event; sealed chunks are appended to
    /// `out`.
    pub fn push(&mut self, seq: u64, event: Event, out: &mut Vec<Chunk>) {
        let p = event.process.index();
        if self.live.len() <= p {
            self.live.resize_with(p + 1, || None);
        }
        // Open an attempt on the process's first event.
        if self.live[p].is_none() {
            let node = self.nodes.make();
            let attempt = self.attempts.len();
            self.attempts.push((node, Vec::new()));
            self.live[p] = Some(LiveAttempt {
                attempt,
                writes: Vec::new(),
            });
            self.live_count += 1;
        }
        let attempt_idx = self.live[p].as_ref().expect("just opened").attempt;
        self.segment.push((seq, event));
        self.event_attempt.push(attempt_idx);

        match event.kind {
            EventKind::Invocation(inv) => {
                if let Some(x) = inv.tvar() {
                    let var = self.var_node_for(x);
                    let (node, vars) = &mut self.attempts[attempt_idx];
                    if !vars.contains(&x) {
                        vars.push(x);
                    }
                    let node = *node;
                    self.nodes.union(node, var);
                }
                if let Invocation::Write(x, v) = inv {
                    self.live[p]
                        .as_mut()
                        .expect("live attempt")
                        .writes
                        .push((x, v));
                }
            }
            EventKind::Response(resp) => {
                if resp.is_terminal() {
                    let attempt = self.live[p].take().expect("live attempt");
                    self.live_count -= 1;
                    if resp.is_commit() {
                        self.pending_commits.extend(attempt.writes);
                    }
                }
            }
        }

        if self.live_count == 0 && self.segment.len() >= self.min_segment_events {
            self.seal_segment(out);
        }
    }

    /// Seals whatever the open segment holds (the stream is over).
    /// Quiescence is guaranteed by well-formed complete workloads; a
    /// truncated stream still seals, leaving its live transactions to
    /// the checker's open-transaction handling.
    pub fn finish(&mut self, out: &mut Vec<Chunk>) {
        if !self.segment.is_empty() {
            self.seal_segment(out);
        }
    }

    fn seal_segment(&mut self, out: &mut Vec<Chunk>) {
        // Group attempts by union-find root, preserving first-seen
        // order so chunk emission is deterministic in the merged order.
        let mut roots: Vec<usize> = Vec::new();
        let mut chunk_of_attempt: Vec<usize> = Vec::with_capacity(self.attempts.len());
        for i in 0..self.attempts.len() {
            let root = self.nodes.find(self.attempts[i].0);
            let slot = roots.iter().position(|&r| r == root).unwrap_or_else(|| {
                roots.push(root);
                roots.len() - 1
            });
            chunk_of_attempt.push(slot);
        }

        // Frontier per chunk: the pre-segment committed value of every
        // t-variable the chunk touches.
        let mut chunks: Vec<Chunk> = roots
            .iter()
            .map(|_| Chunk {
                frontier: Vec::new(),
                events: Vec::new(),
            })
            .collect();
        for (i, (_, vars)) in self.attempts.iter().enumerate() {
            let chunk = &mut chunks[chunk_of_attempt[i]];
            for &x in vars {
                if !chunk.frontier.iter().any(|&(y, _)| y == x) {
                    chunk.frontier.push((x, self.committed_value(x)));
                }
            }
        }
        for (event, &attempt) in self.segment.iter().zip(&self.event_attempt) {
            chunks[chunk_of_attempt[attempt]].events.push(*event);
        }
        out.extend(chunks);

        // Advance the committed state past the segment's commits.
        for &(x, v) in &self.pending_commits {
            let j = x.index();
            if self.committed.len() <= j {
                self.committed.resize(j + 1, INITIAL_VALUE);
            }
            self.committed[j] = v;
        }
        self.pending_commits.clear();

        // Reset per-segment state (committed and live tables persist).
        self.segment.clear();
        self.event_attempt.clear();
        self.attempts.clear();
        for &j in &self.segment_vars {
            self.var_node[j] = None;
        }
        self.segment_vars.clear();
        self.nodes.parent.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::ProcessId;

    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    /// A committed `read x; write x v` transaction by `p`, pushed as six
    /// stamped events starting at `*seq`.
    fn push_rw(
        chunker: &mut Chunker,
        seq: &mut u64,
        p: ProcessId,
        x: TVarId,
        read: Value,
        write: Value,
        out: &mut Vec<Chunk>,
    ) {
        for event in [
            Event::read(p, x),
            Event::value(p, read),
            Event::write(p, x, write),
            Event::ok(p),
            Event::try_commit(p),
            Event::committed(p),
        ] {
            chunker.push(*seq, event, out);
            *seq += 1;
        }
    }

    #[test]
    fn disjoint_variables_split_into_components() {
        let mut chunker = Chunker::new(1);
        let mut out = Vec::new();
        // Interleave two single-op transactions on disjoint variables:
        // p0 opens, p1 opens, p0 closes, p1 closes — one segment, two
        // conflict components.
        let (p0, p1) = (ProcessId(0), ProcessId(1));
        let script = [
            Event::read(p0, X),
            Event::read(p1, Y),
            Event::value(p0, 0),
            Event::value(p1, 0),
            Event::try_commit(p0),
            Event::try_commit(p1),
            Event::committed(p0),
            Event::committed(p1),
        ];
        for (seq, event) in script.into_iter().enumerate() {
            chunker.push(seq as u64, event, &mut out);
        }
        assert_eq!(out.len(), 2, "disjoint vars must land in two chunks");
        assert_eq!(out[0].events.len(), 4);
        assert_eq!(out[1].events.len(), 4);
        assert!(out[0].events.iter().all(|(_, e)| e.process == p0));
        assert!(out[1].events.iter().all(|(_, e)| e.process == p1));
        assert_eq!(out[0].frontier, vec![(X, INITIAL_VALUE)]);
        assert_eq!(out[1].frontier, vec![(Y, INITIAL_VALUE)]);
    }

    #[test]
    fn shared_variable_keeps_one_component() {
        let mut chunker = Chunker::new(1);
        let mut out = Vec::new();
        let (p0, p1) = (ProcessId(0), ProcessId(1));
        let script = [
            Event::read(p0, X),
            Event::read(p1, X),
            Event::value(p0, 0),
            Event::value(p1, 0),
            Event::try_commit(p0),
            Event::try_commit(p1),
            Event::committed(p0),
            Event::committed(p1),
        ];
        for (seq, event) in script.into_iter().enumerate() {
            chunker.push(seq as u64, event, &mut out);
        }
        assert_eq!(out.len(), 1, "a shared var must join the transactions");
        assert_eq!(out[0].events.len(), 8);
    }

    #[test]
    fn later_segment_frontier_reflects_earlier_commits() {
        let mut chunker = Chunker::new(1);
        let mut out = Vec::new();
        let mut seq = 0;
        let p = ProcessId(0);
        push_rw(&mut chunker, &mut seq, p, X, 0, 7, &mut out);
        push_rw(&mut chunker, &mut seq, p, X, 7, 9, &mut out);
        assert_eq!(out.len(), 2, "each quiescent point seals a segment");
        assert_eq!(out[0].frontier, vec![(X, INITIAL_VALUE)]);
        assert_eq!(out[1].frontier, vec![(X, 7)], "frontier carries the commit");
        // Sequence stamps are preserved verbatim.
        assert_eq!(out[0].events.first().unwrap().0, 0);
        assert_eq!(out[1].events.first().unwrap().0, 6);
    }

    #[test]
    fn min_segment_events_batches_quiescent_points() {
        let mut chunker = Chunker::new(100);
        let mut out = Vec::new();
        let mut seq = 0;
        let p = ProcessId(0);
        for i in 0..5 {
            push_rw(&mut chunker, &mut seq, p, X, i, i + 1, &mut out);
        }
        assert!(out.is_empty(), "below the floor nothing seals");
        chunker.finish(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].events.len(), 30);
    }
}
