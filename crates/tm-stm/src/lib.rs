//! Executable STM implementations for the PODC 2012 liveness study.
//!
//! The paper's subject is the behaviour of *real* TM algorithms under
//! adversarial asynchrony: which of them keep which processes progressing
//! when processes crash or turn parasitic. This crate implements the TM
//! algorithms the paper discusses, in two forms:
//!
//! **Stepped** ([`SteppedTm`]) — deterministic state machines driven by an
//! explicit scheduler, exactly the paper's asynchronous model. These are
//! the inputs to the adversary games (`tm-adversary`) and the model
//! checker (`tm-sim`):
//!
//! | TM | paper reference | liveness character |
//! |----|-----------------|--------------------|
//! | [`GlobalLock`] | §1.1, §3.2.1 | local progress without faults; starves everyone on a crash |
//! | [`FgpTm`] | §6 | opacity + global progress in any fault-prone system |
//! | [`Tl2`] | §3.2.3 \[15\] | deferred updates: solo progress in crash-prone systems |
//! | [`TinyStm`] | §3.2.3 \[17\] | encounter-time locks: solo progress only crash-free |
//! | [`SwissTm`] | §3.2.3 \[16\] | eager W/W + greedy CM: livelock-free, solo progress only crash-free |
//! | [`NOrec`] | baseline | value validation, single global orec |
//! | [`Ostm`] | §6 \[13\] | lock-free, global progress |
//! | [`Dstm`] | §3.2.3 \[14\] | obstruction-free, livelocks under contention |
//!
//! **Concurrent** ([`concurrent`]) — thread-driven forms of the global
//! lock, TL2 and NOrec on real atomics, for the throughput benchmarks.
//!
//! ```
//! use tm_core::{Invocation, ProcessId, Response, TVarId};
//! use tm_stm::{Recorded, SteppedTm, Tl2};
//! use tm_safety::is_opaque;
//!
//! let (p1, x) = (ProcessId(0), TVarId(0));
//! let mut tm = Recorded::new(Tl2::new(2, 1));
//! tm.invoke(p1, Invocation::Read(x));
//! tm.invoke(p1, Invocation::TryCommit);
//! assert!(is_opaque(tm.history()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod catalog;
pub mod concurrent;
pub mod dstm;
pub mod fgp;
mod fingerprint;
pub mod global_lock;
pub mod norec;
pub mod ostm;
pub mod priority;
pub mod recorder;
pub mod swiss;
pub mod tiny;
pub mod tl2;

pub use api::{BoxedTm, Outcome, StepFootprint, SteppedTm, SteppedTmExt, TmPool};
pub use catalog::{full_catalog, literal_fgp, nonblocking_catalog};
pub use dstm::Dstm;
pub use fgp::FgpTm;
pub use global_lock::GlobalLock;
pub use norec::NOrec;
pub use ostm::Ostm;
pub use priority::PriorityFgp;
pub use recorder::Recorded;
pub use swiss::SwissTm;
pub use tiny::TinyStm;
pub use tl2::Tl2;
