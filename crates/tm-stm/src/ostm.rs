//! An OSTM-style TM (Fraser's object-based STM, 2003) in stepped form.
//!
//! The paper cites OSTM as the existing implementation ensuring **opacity
//! and global progress** (§6). OSTM is lock-free: transactions install
//! descriptors on per-object handles at commit time in a global total
//! order and *help* conflicting commits complete instead of waiting. In
//! the stepped model every invocation is atomic, so descriptor installation
//! and helping collapse into an atomic commit step; what remains is OSTM's
//! observable conflict behaviour:
//!
//! * per-object version numbers (no global clock);
//! * invisible reads validated **incrementally** (every new read
//!   re-validates the read set, keeping aborted transactions consistent —
//!   opacity);
//! * commit-time validation; the first conflicting committer wins, the
//!   loser aborts — never blocks. A suspended process cannot prevent
//!   others from committing, which is exactly the global-progress shape.

use std::collections::BTreeMap;

use tm_core::{Invocation, ProcessId, Response, TVarId, Value, INITIAL_VALUE};

use crate::api::{BoxedTm, Outcome, StepFootprint, SteppedTm};

#[derive(Debug, Clone)]
struct VarSlot {
    value: Value,
    version: u64,
}

#[derive(Debug, Clone)]
struct ActiveTx {
    /// `(var, version at read time)`.
    reads: Vec<(usize, u64)>,
    writes: BTreeMap<usize, Value>,
}

#[derive(Debug, Clone)]
enum TxState {
    Idle,
    Active(ActiveTx),
}

/// OSTM-style stepped TM (per-object versions, incremental validation,
/// lock-free commit).
///
/// # Examples
///
/// ```
/// use tm_core::{Invocation, ProcessId, Response, TVarId};
/// use tm_stm::{Ostm, Outcome, SteppedTm};
///
/// let (p1, x) = (ProcessId(0), TVarId(0));
/// let mut tm = Ostm::new(1, 1);
/// assert_eq!(tm.invoke(p1, Invocation::Read(x)), Outcome::Response(Response::Value(0)));
/// assert_eq!(tm.invoke(p1, Invocation::TryCommit), Outcome::Response(Response::Committed));
/// ```
#[derive(Debug, Clone)]
pub struct Ostm {
    vars: Vec<VarSlot>,
    txs: Vec<TxState>,
}

impl Ostm {
    /// Creates an OSTM instance for `processes` processes and `tvars`
    /// t-variables.
    ///
    /// # Panics
    ///
    /// Panics if `processes` or `tvars` is zero.
    pub fn new(processes: usize, tvars: usize) -> Self {
        assert!(processes > 0, "need at least one process");
        assert!(tvars > 0, "need at least one t-variable");
        Ostm {
            vars: vec![
                VarSlot {
                    value: INITIAL_VALUE,
                    version: 0
                };
                tvars
            ],
            txs: vec![TxState::Idle; processes],
        }
    }

    /// The committed value of a t-variable (writes are deferred).
    pub fn committed_value(&self, x: TVarId) -> Value {
        self.vars[x.index()].value
    }

    fn tx_mut(&mut self, k: usize) -> &mut ActiveTx {
        if matches!(self.txs[k], TxState::Idle) {
            self.txs[k] = TxState::Active(ActiveTx {
                reads: Vec::new(),
                writes: BTreeMap::new(),
            });
        }
        match &mut self.txs[k] {
            TxState::Active(tx) => tx,
            TxState::Idle => unreachable!(),
        }
    }

    fn reads_valid(vars: &[VarSlot], tx: &ActiveTx) -> bool {
        tx.reads.iter().all(|&(j, ver)| vars[j].version == ver)
    }

    fn abort(&mut self, k: usize) -> Outcome {
        self.txs[k] = TxState::Idle;
        Outcome::Response(Response::Aborted)
    }
}

impl SteppedTm for Ostm {
    fn name(&self) -> &'static str {
        "ostm"
    }

    fn process_count(&self) -> usize {
        self.txs.len()
    }

    fn tvar_count(&self) -> usize {
        self.vars.len()
    }

    fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Outcome {
        let k = process.index();
        assert!(k < self.txs.len(), "process out of range");
        match invocation {
            Invocation::Read(x) => {
                let j = x.index();
                let tx = self.tx_mut(k);
                if let Some(&v) = tx.writes.get(&j) {
                    return Outcome::Response(Response::Value(v));
                }
                let tx_snapshot = tx.clone();
                if !Self::reads_valid(&self.vars, &tx_snapshot) {
                    return self.abort(k);
                }
                let (value, version) = {
                    let slot = &self.vars[j];
                    (slot.value, slot.version)
                };
                self.tx_mut(k).reads.push((j, version));
                Outcome::Response(Response::Value(value))
            }
            Invocation::Write(x, v) => {
                let j = x.index();
                self.tx_mut(k).writes.insert(j, v);
                Outcome::Response(Response::Ok)
            }
            Invocation::TryCommit => {
                let tx = self.tx_mut(k).clone();
                if !Self::reads_valid(&self.vars, &tx) {
                    return self.abort(k);
                }
                for (&j, &v) in &tx.writes {
                    let slot = &mut self.vars[j];
                    slot.value = v;
                    slot.version += 1;
                }
                self.txs[k] = TxState::Idle;
                Outcome::Response(Response::Committed)
            }
        }
    }

    fn poll(&mut self, _process: ProcessId) -> Option<Response> {
        None // lock-free: never withholds responses
    }

    fn has_pending(&self, _process: ProcessId) -> bool {
        false
    }

    fn fork(&self) -> BoxedTm {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn refork_from(&mut self, source: &dyn SteppedTm) -> bool {
        let Some(source) = source.as_any().and_then(|a| a.downcast_ref::<Ostm>()) else {
            return false;
        };
        if self.txs.len() != source.txs.len() || self.vars.len() != source.vars.len() {
            return false;
        }
        self.vars.clone_from(&source.vars);
        for (dst, src) in self.txs.iter_mut().zip(&source.txs) {
            match (dst, src) {
                // Same-variant case reuses the read vector's and write
                // map's existing buffers instead of reallocating.
                (TxState::Active(dst), TxState::Active(src)) => {
                    dst.reads.clone_from(&src.reads);
                    dst.writes.clone_from(&src.writes);
                }
                (dst, src) => *dst = src.clone(),
            }
        }
        true
    }

    fn step_footprint(&self, process: ProcessId, invocation: Invocation) -> StepFootprint {
        // Audited conflict oracle. Shared state: per-object slots
        // `(value, version)` — there is no global clock and no lock
        // word, so OSTM steps never touch the global channel. Reads
        // validate the whole read set incrementally; writes buffer
        // locally; commit publishes per-object versions.
        let k = process.index();
        let tx = match &self.txs[k] {
            TxState::Active(tx) => Some(tx),
            TxState::Idle => None,
        };
        let mut fp = StepFootprint::local();
        match invocation {
            Invocation::Read(x) => {
                let j = x.index();
                if tx.is_some_and(|tx| tx.writes.contains_key(&j)) {
                    return fp; // served from the local write buffer
                }
                fp.add_read(x);
                if let Some(tx) = tx {
                    for &(j, _) in &tx.reads {
                        fp.add_read_index(j); // incremental validation
                    }
                    fp.ends = !Self::reads_valid(&self.vars, tx);
                }
            }
            Invocation::Write(..) => {} // buffered: local
            Invocation::TryCommit => {
                fp.ends = true;
                if let Some(tx) = tx {
                    for &(j, _) in &tx.reads {
                        fp.add_read_index(j);
                    }
                    for &j in tx.writes.keys() {
                        fp.add_write_index(j); // per-object version bump
                    }
                }
            }
        }
        fp
    }

    fn state_digest(&self) -> Option<u64> {
        use std::hash::Hash;
        // Per-object versions are compared only for *equality* against a
        // transaction's recorded read versions (and versions only grow),
        // so the canonical digest reduces each recorded read to a
        // validity bit and drops absolute versions entirely: a commit on
        // object `j` invalidates `j`'s readers identically in any two
        // states digesting equal (see [`SteppedTm::state_digest`]).
        let mut h = tm_core::StableHasher::new();
        for slot in &self.vars {
            slot.value.hash(&mut h);
        }
        for tx in &self.txs {
            match tx {
                TxState::Idle => 0u8.hash(&mut h),
                TxState::Active(tx) => {
                    1u8.hash(&mut h);
                    for &(j, ver) in &tx.reads {
                        (j, self.vars[j].version == ver).hash(&mut h);
                    }
                    tx.writes.hash(&mut h);
                }
            }
        }
        Some(std::hash::Hasher::finish(&h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorded;
    use tm_core::Invocation as Inv;
    use tm_safety::is_opaque;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    fn resp(tm: &mut impl SteppedTm, p: ProcessId, inv: Inv) -> Response {
        tm.invoke(p, inv).response().expect("ostm never blocks")
    }

    #[test]
    fn commit_bumps_per_object_versions() {
        let mut tm = Ostm::new(1, 2);
        resp(&mut tm, P1, Inv::Write(X, 1));
        resp(&mut tm, P1, Inv::TryCommit);
        assert_eq!(tm.vars[0].version, 1);
        assert_eq!(tm.vars[1].version, 0); // untouched object
    }

    #[test]
    fn incremental_validation_aborts_torn_reads() {
        let mut tm = Ostm::new(2, 2);
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(0));
        resp(&mut tm, P2, Inv::Write(X, 1));
        resp(&mut tm, P2, Inv::Write(Y, 1));
        resp(&mut tm, P2, Inv::TryCommit);
        // p1's read of y would tear the snapshot: incremental validation
        // aborts at the read.
        assert_eq!(resp(&mut tm, P1, Inv::Read(Y)), Response::Aborted);
    }

    #[test]
    fn suspended_process_does_not_block_committers() {
        // Global-progress shape: p1 reads then "crashes" (is never
        // scheduled again); p2 commits forever.
        let mut tm = Ostm::new(2, 1);
        resp(&mut tm, P1, Inv::Read(X));
        for round in 0..50u64 {
            assert_eq!(resp(&mut tm, P2, Inv::Read(X)), Response::Value(round));
            resp(&mut tm, P2, Inv::Write(X, round + 1));
            assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Committed);
        }
    }

    #[test]
    fn first_committer_wins() {
        let mut tm = Recorded::new(Ostm::new(2, 1));
        resp(&mut tm, P1, Inv::Read(X));
        resp(&mut tm, P2, Inv::Read(X));
        resp(&mut tm, P2, Inv::Write(X, 1));
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Committed);
        resp(&mut tm, P1, Inv::Write(X, 1));
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Aborted);
        assert!(is_opaque(tm.history()));
    }

    #[test]
    fn write_only_transactions_always_commit() {
        let mut tm = Ostm::new(2, 1);
        resp(&mut tm, P1, Inv::Write(X, 1));
        resp(&mut tm, P2, Inv::Write(X, 2));
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Committed);
        assert_eq!(tm.committed_value(X), 2);
    }

    #[test]
    fn random_interleaving_histories_are_opaque() {
        let mut tm = Recorded::new(Ostm::new(3, 2));
        let mut seed = 99u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..400 {
            let p = ProcessId((rng() % 3) as usize);
            let x = TVarId((rng() % 2) as usize);
            let inv = match rng() % 4 {
                0 | 1 => Inv::Read(x),
                2 => Inv::Write(x, rng() % 4),
                _ => Inv::TryCommit,
            };
            tm.invoke(p, inv);
        }
        let mut checker = tm_safety::IncrementalChecker::new(tm_safety::Mode::Opacity);
        checker
            .push_all(tm.history().iter().copied())
            .expect("every OSTM prefix must be opaque");
    }
}
