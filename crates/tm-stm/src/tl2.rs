//! A TL2-style TM (Dice, Shalev, Shavit; DISC 2006) in stepped form.
//!
//! Deferred updates, a global version clock, and commit-time validation:
//!
//! * a transaction samples the clock at begin (`rv`);
//! * reads of t-variables with version `> rv` abort (the snapshot would be
//!   torn), otherwise the read is recorded invisibly;
//! * writes are buffered;
//! * commit re-validates the read set against `rv`, then advances the
//!   clock and publishes the write set at the new version.
//!
//! In the stepped model each invocation is atomic, so TL2's short
//! commit-time lock acquisition is invisible (locks never straddle a
//! step); what remains — and what the paper's adversary exploits — is the
//! version-clock conflict rule. TL2 uses deferred updates, which is why
//! the paper credits it with solo progress even in crash-prone systems
//! (§3.2.3): a crashed transaction holds nothing that blocks others.

use std::hash::Hash;

use tm_core::{Invocation, ProcessId, Response, TVarId, Value, INITIAL_VALUE};

use crate::api::{BoxedTm, Outcome, StepFootprint, SteppedTm};

#[derive(Debug, Clone)]
struct VarSlot {
    value: Value,
    version: u64,
}

#[derive(Debug, Clone)]
struct ActiveTx {
    rv: u64,
    reads: Vec<usize>,
    writes: std::collections::BTreeMap<usize, Value>,
}

#[derive(Debug, Clone)]
enum TxState {
    Idle,
    Active(ActiveTx),
}

/// TL2-style stepped TM. See the module docs.
///
/// # Examples
///
/// ```
/// use tm_core::{Invocation, ProcessId, Response, TVarId};
/// use tm_stm::{Outcome, SteppedTm, Tl2};
///
/// let (p1, x) = (ProcessId(0), TVarId(0));
/// let mut tm = Tl2::new(1, 1);
/// assert_eq!(
///     tm.invoke(p1, Invocation::Read(x)),
///     Outcome::Response(Response::Value(0))
/// );
/// assert_eq!(
///     tm.invoke(p1, Invocation::TryCommit),
///     Outcome::Response(Response::Committed)
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Tl2 {
    clock: u64,
    vars: Vec<VarSlot>,
    txs: Vec<TxState>,
}

impl Tl2 {
    /// Creates a TL2 instance for `processes` processes and `tvars`
    /// t-variables.
    ///
    /// # Panics
    ///
    /// Panics if `processes` or `tvars` is zero.
    pub fn new(processes: usize, tvars: usize) -> Self {
        assert!(processes > 0, "need at least one process");
        assert!(tvars > 0, "need at least one t-variable");
        Tl2 {
            clock: 0,
            vars: vec![
                VarSlot {
                    value: INITIAL_VALUE,
                    version: 0
                };
                tvars
            ],
            txs: vec![TxState::Idle; processes],
        }
    }

    /// The committed value of a t-variable (writes are deferred, so the
    /// store always holds committed state).
    pub fn committed_value(&self, x: TVarId) -> Value {
        self.vars[x.index()].value
    }

    fn tx_mut(&mut self, k: usize) -> &mut ActiveTx {
        if matches!(self.txs[k], TxState::Idle) {
            self.txs[k] = TxState::Active(ActiveTx {
                rv: self.clock,
                reads: Vec::new(),
                writes: Default::default(),
            });
        }
        match &mut self.txs[k] {
            TxState::Active(tx) => tx,
            TxState::Idle => unreachable!(),
        }
    }

    fn abort(&mut self, k: usize) -> Outcome {
        self.txs[k] = TxState::Idle;
        Outcome::Response(Response::Aborted)
    }

    /// Rank table over every timestamp in the state: the clock, each
    /// slot version and each active transaction's `rv` (see
    /// [`crate::fingerprint::Ranks`] for why digests hash ranks).
    fn timestamp_ranks(&self) -> crate::fingerprint::Ranks {
        let mut stamps = Vec::with_capacity(self.vars.len() + self.txs.len() + 1);
        stamps.push(self.clock);
        stamps.extend(self.vars.iter().map(|s| s.version));
        for tx in &self.txs {
            if let TxState::Active(tx) = tx {
                stamps.push(tx.rv);
            }
        }
        crate::fingerprint::Ranks::new(stamps)
    }
}

impl SteppedTm for Tl2 {
    fn name(&self) -> &'static str {
        "tl2"
    }

    fn process_count(&self) -> usize {
        self.txs.len()
    }

    fn tvar_count(&self) -> usize {
        self.vars.len()
    }

    fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Outcome {
        let k = process.index();
        assert!(k < self.txs.len(), "process out of range");
        match invocation {
            Invocation::Read(x) => {
                let j = x.index();
                let tx = self.tx_mut(k);
                if let Some(&v) = tx.writes.get(&j) {
                    return Outcome::Response(Response::Value(v));
                }
                let rv = tx.rv;
                let slot = &self.vars[j];
                if slot.version > rv {
                    return self.abort(k);
                }
                let value = slot.value;
                self.tx_mut(k).reads.push(j);
                Outcome::Response(Response::Value(value))
            }
            Invocation::Write(x, v) => {
                let j = x.index();
                self.tx_mut(k).writes.insert(j, v);
                Outcome::Response(Response::Ok)
            }
            Invocation::TryCommit => {
                let tx = self.tx_mut(k).clone();
                let valid = tx.reads.iter().all(|&j| self.vars[j].version <= tx.rv);
                if !valid {
                    return self.abort(k);
                }
                if !tx.writes.is_empty() {
                    self.clock += 1;
                    let wv = self.clock;
                    for (&j, &v) in &tx.writes {
                        self.vars[j] = VarSlot {
                            value: v,
                            version: wv,
                        };
                    }
                }
                self.txs[k] = TxState::Idle;
                Outcome::Response(Response::Committed)
            }
        }
    }

    fn poll(&mut self, _process: ProcessId) -> Option<Response> {
        None // TL2 never withholds responses.
    }

    fn has_pending(&self, _process: ProcessId) -> bool {
        false
    }

    fn fork(&self) -> BoxedTm {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn refork_from(&mut self, source: &dyn SteppedTm) -> bool {
        let Some(source) = source.as_any().and_then(|a| a.downcast_ref::<Tl2>()) else {
            return false;
        };
        if self.txs.len() != source.txs.len() || self.vars.len() != source.vars.len() {
            return false;
        }
        self.clock = source.clock;
        self.vars.clone_from(&source.vars);
        for (dst, src) in self.txs.iter_mut().zip(&source.txs) {
            match (dst, src) {
                // Same-variant case reuses the read vector's and write
                // map's existing buffers instead of reallocating.
                (TxState::Active(dst), TxState::Active(src)) => {
                    dst.rv = src.rv;
                    dst.reads.clone_from(&src.reads);
                    dst.writes.clone_from(&src.writes);
                }
                (dst, src) => *dst = src.clone(),
            }
        }
        true
    }

    fn state_digest(&self) -> Option<u64> {
        let ranks = self.timestamp_ranks();
        let rank = |t: u64| ranks.rank(t);
        let mut h = tm_core::StableHasher::new();
        rank(self.clock).hash(&mut h);
        for slot in &self.vars {
            (slot.value, rank(slot.version)).hash(&mut h);
        }
        for tx in &self.txs {
            match tx {
                TxState::Idle => 0u8.hash(&mut h),
                TxState::Active(tx) => {
                    1u8.hash(&mut h);
                    rank(tx.rv).hash(&mut h);
                    // Read/write sets are exact state: reads are replayed
                    // against versions at commit, buffered writes shadow
                    // reads and publish on commit. Their order is already
                    // canonical (invocation order per the deterministic
                    // client; key order for the map).
                    tx.reads.hash(&mut h);
                    tx.writes.hash(&mut h);
                }
            }
        }
        Some(std::hash::Hasher::finish(&h))
    }

    fn disjoint_var_ops_commute(&self) -> bool {
        // Audited: begin *samples* the global clock (only commit
        // advances it), reads touch the variable's own slot, writes are
        // buffered in the transaction's local write set.
        true
    }

    fn step_footprint(&self, process: ProcessId, invocation: Invocation) -> StepFootprint {
        // Audited conflict oracle. Shared state: per-variable slots
        // `(value, version)` and the global clock. Reads sample a slot
        // and validate `version > rv` (rv is transaction-local, drawn
        // from the clock at begin); writes buffer into the local write
        // set and touch nothing shared; only a committing `tryC`
        // advances the clock and publishes slots.
        let k = process.index();
        let tx = match &self.txs[k] {
            TxState::Active(tx) => Some(tx),
            TxState::Idle => None,
        };
        let mut fp = StepFootprint::local();
        // Begin samples the global clock.
        fp.global_read = tx.is_none();
        match invocation {
            Invocation::Read(x) => {
                let j = x.index();
                if tx.is_some_and(|tx| tx.writes.contains_key(&j)) {
                    return fp; // served from the local write buffer
                }
                fp.add_read(x);
                // Deterministic: the read aborts now iff the slot is
                // newer than the snapshot (a fresh transaction's rv is
                // the current clock, which no version exceeds).
                fp.ends = tx.is_some_and(|tx| self.vars[j].version > tx.rv);
            }
            Invocation::Write(..) => {} // buffered: local
            Invocation::TryCommit => {
                fp.ends = true;
                if let Some(tx) = tx {
                    for &j in &tx.reads {
                        fp.add_read_index(j); // commit-time validation
                    }
                    if !tx.writes.is_empty() {
                        fp.global_write = true; // clock bump
                        for &j in tx.writes.keys() {
                            fp.add_write_index(j);
                        }
                    }
                }
            }
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorded;
    use tm_core::Invocation as Inv;
    use tm_safety::is_opaque;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    fn resp(tm: &mut impl SteppedTm, p: ProcessId, inv: Inv) -> Response {
        tm.invoke(p, inv).response().expect("tl2 never blocks")
    }

    #[test]
    fn read_write_commit_cycle() {
        let mut tm = Tl2::new(1, 1);
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(0));
        assert_eq!(resp(&mut tm, P1, Inv::Write(X, 7)), Response::Ok);
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
        assert_eq!(tm.committed_value(X), 7);
    }

    #[test]
    fn buffered_writes_read_back_and_stay_invisible() {
        let mut tm = Tl2::new(2, 1);
        resp(&mut tm, P1, Inv::Write(X, 5));
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(5));
        // Invisible to p2 and to the committed store.
        assert_eq!(resp(&mut tm, P2, Inv::Read(X)), Response::Value(0));
        assert_eq!(tm.committed_value(X), 0);
    }

    #[test]
    fn conflicting_writer_aborts_reader_at_commit() {
        // The Algorithm 1 pattern: p1 reads, p2 commits a write, p1 cannot
        // commit its own write of x.
        let mut tm = Recorded::new(Tl2::new(2, 1));
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(0));
        assert_eq!(resp(&mut tm, P2, Inv::Read(X)), Response::Value(0));
        assert_eq!(resp(&mut tm, P2, Inv::Write(X, 1)), Response::Ok);
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Committed);
        assert_eq!(resp(&mut tm, P1, Inv::Write(X, 1)), Response::Ok);
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Aborted);
        assert!(is_opaque(tm.history()));
    }

    #[test]
    fn stale_read_aborts_immediately() {
        let mut tm = Tl2::new(2, 2);
        // p1 begins (rv = 0) by reading y.
        assert_eq!(resp(&mut tm, P1, Inv::Read(Y)), Response::Value(0));
        // p2 commits x at version 1.
        resp(&mut tm, P2, Inv::Write(X, 9));
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Committed);
        // p1's read of x sees version 1 > rv 0: abort at the read.
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Aborted);
    }

    #[test]
    fn read_only_transaction_commits_without_clock_bump() {
        let mut tm = Tl2::new(1, 1);
        resp(&mut tm, P1, Inv::Read(X));
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
        assert_eq!(tm.clock, 0);
    }

    #[test]
    fn disjoint_writers_both_commit() {
        let mut tm = Tl2::new(2, 2);
        resp(&mut tm, P1, Inv::Write(X, 1));
        resp(&mut tm, P2, Inv::Write(Y, 2));
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Committed);
        assert_eq!(tm.committed_value(X), 1);
        assert_eq!(tm.committed_value(Y), 2);
    }

    #[test]
    fn aborted_transaction_leaves_no_trace() {
        let mut tm = Tl2::new(2, 1);
        resp(&mut tm, P1, Inv::Read(X));
        resp(&mut tm, P2, Inv::Write(X, 3));
        resp(&mut tm, P2, Inv::TryCommit);
        resp(&mut tm, P1, Inv::Write(X, 8));
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Aborted);
        assert_eq!(tm.committed_value(X), 3);
        // p1 retries and succeeds.
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(3));
        resp(&mut tm, P1, Inv::Write(X, 8));
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
    }

    #[test]
    fn random_interleaving_histories_are_opaque() {
        let mut tm = Recorded::new(Tl2::new(3, 2));
        let mut seed = 42u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..400 {
            let p = ProcessId((rng() % 3) as usize);
            let x = TVarId((rng() % 2) as usize);
            let inv = match rng() % 4 {
                0 | 1 => Inv::Read(x),
                2 => Inv::Write(x, rng() % 4),
                _ => Inv::TryCommit,
            };
            tm.invoke(p, inv);
        }
        let mut checker = tm_safety::IncrementalChecker::new(tm_safety::Mode::Opacity);
        checker
            .push_all(tm.history().iter().copied())
            .expect("every TL2 prefix must be opaque");
    }
}
