//! A NOrec-style TM (Dalessandro, Spear, Scott; PPoPP 2010) in stepped
//! form: no per-location metadata, one global sequence number, and
//! value-based validation.
//!
//! * a transaction snapshots the global sequence number at begin;
//! * every read records `(t-variable, value)`; if the sequence number has
//!   moved since the snapshot, the whole read set is re-validated **by
//!   value** — if every recorded value is unchanged, the snapshot is
//!   extended instead of aborting;
//! * writes are buffered; commit re-validates, applies the write set and
//!   bumps the sequence number.
//!
//! NOrec is included both as a baseline with a completely different
//! conflict-detection granularity (one orec for the whole memory) and
//! because value-based validation gives it a distinctive behaviour under
//! the paper's adversary: writing the *same* value back lets doomed
//! readers survive (silent-store tolerance), which the harnesses exercise.

use std::collections::BTreeMap;

use tm_core::{Invocation, ProcessId, Response, TVarId, Value, INITIAL_VALUE};

use crate::api::{BoxedTm, Outcome, StepFootprint, SteppedTm};

#[derive(Debug, Clone)]
struct ActiveTx {
    snapshot: u64,
    reads: Vec<(usize, Value)>,
    writes: BTreeMap<usize, Value>,
}

#[derive(Debug, Clone)]
enum TxState {
    Idle,
    Active(ActiveTx),
}

/// NOrec-style stepped TM (global seqlock + value validation).
///
/// # Examples
///
/// ```
/// use tm_core::{Invocation, ProcessId, Response, TVarId};
/// use tm_stm::{Outcome, NOrec, SteppedTm};
///
/// let (p1, x) = (ProcessId(0), TVarId(0));
/// let mut tm = NOrec::new(1, 1);
/// assert_eq!(tm.invoke(p1, Invocation::Write(x, 2)), Outcome::Response(Response::Ok));
/// assert_eq!(tm.invoke(p1, Invocation::TryCommit), Outcome::Response(Response::Committed));
/// assert_eq!(tm.committed_value(x), 2);
/// ```
#[derive(Debug, Clone)]
pub struct NOrec {
    seq: u64,
    vars: Vec<Value>,
    txs: Vec<TxState>,
}

impl NOrec {
    /// Creates a NOrec instance for `processes` processes and `tvars`
    /// t-variables.
    ///
    /// # Panics
    ///
    /// Panics if `processes` or `tvars` is zero.
    pub fn new(processes: usize, tvars: usize) -> Self {
        assert!(processes > 0, "need at least one process");
        assert!(tvars > 0, "need at least one t-variable");
        NOrec {
            seq: 0,
            vars: vec![INITIAL_VALUE; tvars],
            txs: vec![TxState::Idle; processes],
        }
    }

    /// The committed value of a t-variable.
    pub fn committed_value(&self, x: TVarId) -> Value {
        self.vars[x.index()]
    }

    fn tx_mut(&mut self, k: usize) -> &mut ActiveTx {
        if matches!(self.txs[k], TxState::Idle) {
            self.txs[k] = TxState::Active(ActiveTx {
                snapshot: self.seq,
                reads: Vec::new(),
                writes: BTreeMap::new(),
            });
        }
        match &mut self.txs[k] {
            TxState::Active(tx) => tx,
            TxState::Idle => unreachable!(),
        }
    }

    /// Re-validates the read set by value; on success extends the snapshot
    /// to the current sequence number. Returns false if any read changed.
    fn revalidate(vars: &[Value], seq: u64, tx: &mut ActiveTx) -> bool {
        if tx.snapshot == seq {
            return true;
        }
        if tx.reads.iter().all(|&(j, v)| vars[j] == v) {
            tx.snapshot = seq;
            true
        } else {
            false
        }
    }

    fn abort(&mut self, k: usize) -> Outcome {
        self.txs[k] = TxState::Idle;
        Outcome::Response(Response::Aborted)
    }
}

impl SteppedTm for NOrec {
    fn name(&self) -> &'static str {
        "norec"
    }

    fn process_count(&self) -> usize {
        self.txs.len()
    }

    fn tvar_count(&self) -> usize {
        self.vars.len()
    }

    fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Outcome {
        let k = process.index();
        assert!(k < self.txs.len(), "process out of range");
        match invocation {
            Invocation::Read(x) => {
                let j = x.index();
                let seq = self.seq;
                let vars = std::mem::take(&mut self.vars);
                let tx = self.tx_mut(k);
                if let Some(&v) = tx.writes.get(&j) {
                    self.vars = vars;
                    return Outcome::Response(Response::Value(v));
                }
                let ok = Self::revalidate(&vars, seq, tx);
                let value = vars[j];
                if ok {
                    tx.reads.push((j, value));
                }
                self.vars = vars;
                if !ok {
                    return self.abort(k);
                }
                Outcome::Response(Response::Value(value))
            }
            Invocation::Write(x, v) => {
                let j = x.index();
                self.tx_mut(k).writes.insert(j, v);
                Outcome::Response(Response::Ok)
            }
            Invocation::TryCommit => {
                let seq = self.seq;
                let vars = std::mem::take(&mut self.vars);
                let tx = self.tx_mut(k);
                let ok = Self::revalidate(&vars, seq, tx);
                let writes = tx.writes.clone();
                self.vars = vars;
                if !ok {
                    return self.abort(k);
                }
                if !writes.is_empty() {
                    self.seq += 1;
                    for (j, v) in writes {
                        self.vars[j] = v;
                    }
                }
                self.txs[k] = TxState::Idle;
                Outcome::Response(Response::Committed)
            }
        }
    }

    fn poll(&mut self, _process: ProcessId) -> Option<Response> {
        None // NOrec never withholds responses.
    }

    fn has_pending(&self, _process: ProcessId) -> bool {
        false
    }

    fn fork(&self) -> BoxedTm {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn refork_from(&mut self, source: &dyn SteppedTm) -> bool {
        let Some(source) = source.as_any().and_then(|a| a.downcast_ref::<NOrec>()) else {
            return false;
        };
        if self.txs.len() != source.txs.len() || self.vars.len() != source.vars.len() {
            return false;
        }
        self.seq = source.seq;
        self.vars.clone_from(&source.vars);
        for (dst, src) in self.txs.iter_mut().zip(&source.txs) {
            match (dst, src) {
                // Same-variant case reuses the read vector's and write
                // map's existing buffers instead of reallocating.
                (TxState::Active(dst), TxState::Active(src)) => {
                    dst.snapshot = src.snapshot;
                    dst.reads.clone_from(&src.reads);
                    dst.writes.clone_from(&src.writes);
                }
                (dst, src) => *dst = src.clone(),
            }
        }
        true
    }

    fn state_digest(&self) -> Option<u64> {
        use std::hash::Hash;
        // NOrec compares its sequence number only for *equality*
        // (`snapshot == seq` decides whether a value revalidation runs),
        // so the canonical digest reduces each transaction's snapshot to
        // a staleness bit and drops the absolute sequence number — a
        // commit flips every staleness bit identically in any two states
        // digesting equal (see [`SteppedTm::state_digest`]).
        let mut h = tm_core::StableHasher::new();
        self.vars.hash(&mut h);
        for tx in &self.txs {
            match tx {
                TxState::Idle => 0u8.hash(&mut h),
                TxState::Active(tx) => {
                    1u8.hash(&mut h);
                    (tx.snapshot == self.seq).hash(&mut h);
                    tx.reads.hash(&mut h);
                    tx.writes.hash(&mut h);
                }
            }
        }
        Some(std::hash::Hasher::finish(&h))
    }

    fn disjoint_var_ops_commute(&self) -> bool {
        // Audited: begin snapshots the global sequence number (only
        // commit advances it); value re-validation reads committed
        // values, which also change only at commit.
        true
    }

    fn step_footprint(&self, process: ProcessId, invocation: Invocation) -> StepFootprint {
        // Audited conflict oracle. Shared state: the committed value
        // array and the single global sequence number. Every read
        // compares `snapshot` against `seq` (and may value-revalidate
        // the whole read set), so reads carry `global_read` and the read
        // set's variables; writes buffer locally; only a committing
        // `tryC` bumps `seq` and publishes values.
        let k = process.index();
        let tx = match &self.txs[k] {
            TxState::Active(tx) => Some(tx),
            TxState::Idle => None,
        };
        let mut fp = StepFootprint::local();
        match invocation {
            Invocation::Read(x) => {
                let j = x.index();
                if tx.is_some_and(|tx| tx.writes.contains_key(&j)) {
                    return fp; // served from the local write buffer
                }
                fp.global_read = true; // snapshot-vs-seq comparison (or begin)
                fp.add_read(x);
                if let Some(tx) = tx {
                    for &(j, _) in &tx.reads {
                        fp.add_read_index(j); // value revalidation
                    }
                    fp.ends = tx.snapshot != self.seq
                        && !tx.reads.iter().all(|&(j, v)| self.vars[j] == v);
                }
            }
            Invocation::Write(..) => {
                fp.global_read = tx.is_none(); // begin snapshots seq
            }
            Invocation::TryCommit => {
                fp.ends = true;
                fp.global_read = true;
                if let Some(tx) = tx {
                    for &(j, _) in &tx.reads {
                        fp.add_read_index(j);
                    }
                    if !tx.writes.is_empty() {
                        fp.global_write = true; // seq bump
                        for &j in tx.writes.keys() {
                            fp.add_write_index(j);
                        }
                    }
                }
            }
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorded;
    use tm_core::Invocation as Inv;
    use tm_safety::is_opaque;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    fn resp(tm: &mut impl SteppedTm, p: ProcessId, inv: Inv) -> Response {
        tm.invoke(p, inv).response().expect("norec never blocks")
    }

    #[test]
    fn basic_commit_applies_writes() {
        let mut tm = NOrec::new(1, 2);
        resp(&mut tm, P1, Inv::Write(X, 4));
        resp(&mut tm, P1, Inv::Write(Y, 5));
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
        assert_eq!(tm.committed_value(X), 4);
        assert_eq!(tm.committed_value(Y), 5);
        assert_eq!(tm.seq, 1);
    }

    #[test]
    fn snapshot_extension_tolerates_unrelated_commits() {
        let mut tm = NOrec::new(2, 2);
        // p1 reads x; p2 commits a write to y; p1 reads y and can still
        // commit: value validation of x passes, snapshot extends.
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(0));
        resp(&mut tm, P2, Inv::Write(Y, 9));
        resp(&mut tm, P2, Inv::TryCommit);
        assert_eq!(resp(&mut tm, P1, Inv::Read(Y)), Response::Value(9));
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
    }

    #[test]
    fn silent_store_tolerance() {
        // p2 writes back the same value: p1's value-based validation
        // succeeds where TL2's version check would abort.
        let mut tm = NOrec::new(2, 1);
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(0));
        resp(&mut tm, P2, Inv::Write(X, 0)); // silent store
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Committed);
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
    }

    #[test]
    fn conflicting_write_aborts_reader() {
        let mut tm = Recorded::new(NOrec::new(2, 1));
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(0));
        resp(&mut tm, P2, Inv::Write(X, 1));
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Committed);
        resp(&mut tm, P1, Inv::Write(X, 1));
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Aborted);
        assert!(is_opaque(tm.history()));
    }

    #[test]
    fn torn_read_aborts_at_read_time() {
        let mut tm = NOrec::new(2, 2);
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(0));
        resp(&mut tm, P2, Inv::Write(X, 1));
        resp(&mut tm, P2, Inv::Write(Y, 1));
        resp(&mut tm, P2, Inv::TryCommit);
        // p1's next read triggers revalidation: x changed → abort.
        assert_eq!(resp(&mut tm, P1, Inv::Read(Y)), Response::Aborted);
    }

    #[test]
    fn own_writes_read_back() {
        let mut tm = NOrec::new(1, 1);
        resp(&mut tm, P1, Inv::Write(X, 8));
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(8));
    }

    #[test]
    fn read_only_transactions_do_not_bump_seq() {
        let mut tm = NOrec::new(1, 1);
        resp(&mut tm, P1, Inv::Read(X));
        resp(&mut tm, P1, Inv::TryCommit);
        assert_eq!(tm.seq, 0);
    }

    #[test]
    fn random_interleaving_histories_are_opaque() {
        let mut tm = Recorded::new(NOrec::new(3, 2));
        let mut seed = 1234u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..400 {
            let p = ProcessId((rng() % 3) as usize);
            let x = TVarId((rng() % 2) as usize);
            let inv = match rng() % 4 {
                0 | 1 => Inv::Read(x),
                2 => Inv::Write(x, rng() % 4),
                _ => Inv::TryCommit,
            };
            tm.invoke(p, inv);
        }
        let mut checker = tm_safety::IncrementalChecker::new(tm_safety::Mode::Opacity);
        checker
            .push_all(tm.history().iter().copied())
            .expect("every NOrec prefix must be opaque");
    }
}
