//! The paper's `Fgp` automaton behind the [`SteppedTm`] interface.
//!
//! This is the same automaton as [`tm_automata::Fgp`] (Section 6 of the
//! paper) packaged for the schedulers, adversaries and model checker that
//! drive [`SteppedTm`] implementations. `Fgp` never withholds a response,
//! so [`SteppedTm::poll`] never has work to do.

use tm_automata::{Fgp, FgpVariant, Runner, TmAutomaton};
use tm_core::{Invocation, ProcessId, Response, TVarId, Value};

use crate::api::{BoxedTm, Outcome, StepFootprint, SteppedTm};

/// Stepped adapter around the `Fgp` I/O automaton.
///
/// # Examples
///
/// ```
/// use tm_core::{Invocation, ProcessId, Response, TVarId};
/// use tm_stm::{FgpTm, Outcome, SteppedTm};
/// use tm_automata::FgpVariant;
///
/// let (p1, x) = (ProcessId(0), TVarId(0));
/// let mut tm = FgpTm::new(2, 1, FgpVariant::CpOnly);
/// assert_eq!(tm.invoke(p1, Invocation::Read(x)), Outcome::Response(Response::Value(0)));
/// ```
#[derive(Debug, Clone)]
pub struct FgpTm {
    runner: Runner<Fgp>,
    name: &'static str,
}

impl FgpTm {
    /// Creates a stepped `Fgp` TM.
    ///
    /// # Panics
    ///
    /// Panics if `processes` or `tvars` is zero.
    pub fn new(processes: usize, tvars: usize, variant: FgpVariant) -> Self {
        // The adapter is driven by harnesses that record histories
        // themselves (`Recorded`, the model checker), so the runner's own
        // log is dead weight — and would make `fork` O(history).
        let mut runner = Runner::new(Fgp::new(processes, tvars, variant));
        runner.disable_recording();
        FgpTm {
            runner,
            name: match variant {
                FgpVariant::Literal => "fgp-literal",
                FgpVariant::Strict => "fgp-strict",
                FgpVariant::CpOnly => "fgp",
            },
        }
    }

    /// The variant of the underlying automaton.
    pub fn variant(&self) -> FgpVariant {
        self.runner.automaton().variant()
    }

    /// The committed view of a t-variable: after every commit all `Val`
    /// rows coincide; between commits the committer's row is authoritative.
    /// For inspection purposes the row of any process with `Status = c`
    /// and no own writes is the committed state; we return row 0's view,
    /// which is exact for the tests that use it (they query at commit
    /// boundaries).
    pub fn view(&self, process: ProcessId, x: TVarId) -> Value {
        tm_automata::fgp::view_of(self.runner.state(), process, x)
    }
}

impl SteppedTm for FgpTm {
    fn name(&self) -> &'static str {
        self.name
    }

    fn process_count(&self) -> usize {
        self.runner.automaton().process_count()
    }

    fn tvar_count(&self) -> usize {
        self.runner.automaton().tvar_count()
    }

    fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Outcome {
        self.runner
            .invoke(process, invocation)
            .expect("driver must respect the sequential-process contract");
        let response = self
            .runner
            .deliver(process)
            .expect("Fgp always has an enabled response");
        Outcome::Response(response)
    }

    fn poll(&mut self, _process: ProcessId) -> Option<Response> {
        None // Fgp never withholds responses.
    }

    fn has_pending(&self, process: ProcessId) -> bool {
        self.runner.state().pending[process.index()].is_some()
    }

    fn fork(&self) -> BoxedTm {
        Box::new(self.clone())
    }

    fn disjoint_var_ops_commute(&self) -> bool {
        // Audited: an operation inserts into `CP` (a commutative
        // set-insert), checks/updates only the process's own `Status`
        // bit and `Val` row, and reads its own row; global view syncing
        // and dooming happen only at `tryC`.
        true
    }

    fn step_footprint(&self, process: ProcessId, invocation: Invocation) -> StepFootprint {
        // Audited conflict oracle, for all three variants. An operation
        // step touches only the process's own `Val` row and `Status`
        // bit, plus a *commutative* insert into `CP` — so operation
        // steps by different processes commute even on the same
        // t-variable, and the per-variable masks stay empty. The
        // `Status` bit is set by other processes' commits and `CP` is
        // read (and cleared) by them, so operations are global readers;
        // `tryC` — which dooms, syncs every view and clears `CP` — is
        // the lone global writer.
        let k = process.index();
        let doomed = self.runner.state().status(k) == tm_automata::fgp::PStatus::Doomed;
        let mut fp = StepFootprint::local();
        fp.global_read = true;
        match invocation {
            Invocation::Read(_) | Invocation::Write(..) => fp.ends = doomed,
            Invocation::TryCommit => {
                fp.ends = true;
                fp.global_write = true;
            }
        }
        fp
    }

    fn state_digest(&self) -> Option<u64> {
        // The automaton state `(Status, CP, Val, f)` is already canonical:
        // no unbounded counters, every component behaviour-relevant. The
        // runner's (disabled) history is deliberately excluded.
        Some(tm_core::digest_of(self.runner.state()))
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn refork_from(&mut self, source: &dyn SteppedTm) -> bool {
        let Some(source) = source.as_any().and_then(|a| a.downcast_ref::<FgpTm>()) else {
            return false;
        };
        if self.process_count() != source.process_count()
            || self.tvar_count() != source.tvar_count()
            || self.variant() != source.variant()
        {
            return false;
        }
        self.runner.copy_from(&source.runner);
        self.name = source.name;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorded;
    use tm_core::Invocation as Inv;
    use tm_safety::is_opaque;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);

    fn resp(tm: &mut impl SteppedTm, p: ProcessId, inv: Inv) -> Response {
        tm.invoke(p, inv).response().expect("fgp never blocks")
    }

    #[test]
    fn adapter_matches_automaton_behaviour() {
        let mut tm = Recorded::new(FgpTm::new(2, 1, FgpVariant::CpOnly));
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(0));
        assert_eq!(resp(&mut tm, P2, Inv::Read(X)), Response::Value(0));
        resp(&mut tm, P2, Inv::Write(X, 1));
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Committed);
        assert_eq!(resp(&mut tm, P1, Inv::Write(X, 1)), Response::Aborted);
        assert!(is_opaque(tm.history()));
    }

    #[test]
    fn names_reflect_variants() {
        assert_eq!(FgpTm::new(1, 1, FgpVariant::CpOnly).name(), "fgp");
        assert_eq!(FgpTm::new(1, 1, FgpVariant::Strict).name(), "fgp-strict");
        assert_eq!(FgpTm::new(1, 1, FgpVariant::Literal).name(), "fgp-literal");
    }

    #[test]
    fn never_pending() {
        let mut tm = FgpTm::new(1, 1, FgpVariant::CpOnly);
        assert!(!tm.has_pending(P1));
        resp(&mut tm, P1, Inv::Read(X));
        assert!(!tm.has_pending(P1));
        assert_eq!(tm.poll(P1), None);
    }
}
