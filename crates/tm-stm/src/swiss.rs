//! A SwissTM-style TM (Dragojević, Guerraoui, Kapałka; PLDI 2009) in
//! stepped form: two-phase conflict detection with a greedy contention
//! manager.
//!
//! SwissTM's signature mix, preserved here:
//!
//! * **write/write conflicts eagerly**: a write acquires the t-variable's
//!   write lock at encounter time; on conflict the **greedy** contention
//!   manager compares transaction ages (global begin timestamps): the
//!   *older* transaction wins and the younger one is aborted — no
//!   livelock, unlike DSTM's aggressive CM (the ABL2 harness contrasts
//!   them);
//! * **read/write conflicts lazily**: writes are buffered (deferred
//!   update), reads are invisible and validated against a TL2-style global
//!   version clock, so readers never block writers and vice versa;
//! * commit validates the read set, publishes the write set at a new
//!   version and releases the write locks.
//!
//! The paper cites SwissTM (§3.2.3) among the lock-based TMs ensuring solo
//! progress only in systems that are both crash-free and parasitic-free:
//! like TinySTM, an orphaned write lock starves conflicting writers — but
//! thanks to deferred updates, *readers* of the locked variable still
//! proceed (a distinction the liveness tests pin down).

use std::collections::BTreeMap;

use tm_core::{Invocation, ProcessId, Response, TVarId, Value, INITIAL_VALUE};

use crate::api::{BoxedTm, Outcome, StepFootprint, SteppedTm};

#[derive(Debug, Clone)]
struct VarSlot {
    value: Value,
    version: u64,
    /// Encounter-time write lock (owner's process index).
    writer: Option<usize>,
}

#[derive(Debug, Clone)]
struct ActiveTx {
    /// Global begin timestamp (greedy CM: smaller = older = wins).
    age: u64,
    rv: u64,
    reads: Vec<usize>,
    writes: BTreeMap<usize, Value>,
}

#[derive(Debug, Clone)]
enum TxState {
    Idle,
    Active(ActiveTx),
    /// Aborted by the greedy contention manager; the process learns at its
    /// next event.
    Doomed,
}

/// SwissTM-style stepped TM (eager W/W with greedy CM, lazy R/W).
///
/// # Examples
///
/// ```
/// use tm_core::{Invocation, ProcessId, Response, TVarId};
/// use tm_stm::{Outcome, SteppedTm, SwissTm};
///
/// let (p1, p2, x) = (ProcessId(0), ProcessId(1), TVarId(0));
/// let mut tm = SwissTm::new(2, 1);
/// // p1 (older) locks x; p2's conflicting write loses to the greedy CM.
/// assert_eq!(tm.invoke(p1, Invocation::Write(x, 1)), Outcome::Response(Response::Ok));
/// assert_eq!(tm.invoke(p2, Invocation::Write(x, 2)), Outcome::Response(Response::Aborted));
/// assert_eq!(tm.invoke(p1, Invocation::TryCommit), Outcome::Response(Response::Committed));
/// ```
#[derive(Debug, Clone)]
pub struct SwissTm {
    clock: u64,
    /// Monotonic source of transaction begin timestamps.
    next_age: u64,
    vars: Vec<VarSlot>,
    txs: Vec<TxState>,
}

impl SwissTm {
    /// Creates a SwissTM instance for `processes` processes and `tvars`
    /// t-variables.
    ///
    /// # Panics
    ///
    /// Panics if `processes` or `tvars` is zero.
    pub fn new(processes: usize, tvars: usize) -> Self {
        assert!(processes > 0, "need at least one process");
        assert!(tvars > 0, "need at least one t-variable");
        SwissTm {
            clock: 0,
            next_age: 0,
            vars: vec![
                VarSlot {
                    value: INITIAL_VALUE,
                    version: 0,
                    writer: None,
                };
                tvars
            ],
            txs: vec![TxState::Idle; processes],
        }
    }

    /// The committed value of a t-variable (updates are deferred, so the
    /// store always holds committed state).
    pub fn committed_value(&self, x: TVarId) -> Value {
        self.vars[x.index()].value
    }

    fn tx_mut(&mut self, k: usize) -> &mut ActiveTx {
        if matches!(self.txs[k], TxState::Idle) {
            self.next_age += 1;
            self.txs[k] = TxState::Active(ActiveTx {
                age: self.next_age,
                rv: self.clock,
                reads: Vec::new(),
                writes: BTreeMap::new(),
            });
        }
        match &mut self.txs[k] {
            TxState::Active(tx) => tx,
            _ => unreachable!("caller handles Doomed before tx_mut"),
        }
    }

    fn age_of(&self, k: usize) -> Option<u64> {
        match &self.txs[k] {
            TxState::Active(tx) => Some(tx.age),
            _ => None,
        }
    }

    /// Releases every write lock held by `k`.
    fn release_locks(&mut self, k: usize) {
        for slot in &mut self.vars {
            if slot.writer == Some(k) {
                slot.writer = None;
            }
        }
    }

    fn abort_self(&mut self, k: usize) -> Outcome {
        self.release_locks(k);
        self.txs[k] = TxState::Idle;
        Outcome::Response(Response::Aborted)
    }

    /// Dooms the transaction of `victim` (greedy CM decision).
    fn doom(&mut self, victim: usize) {
        self.release_locks(victim);
        self.txs[victim] = TxState::Doomed;
    }
}

impl SteppedTm for SwissTm {
    fn name(&self) -> &'static str {
        "swisstm"
    }

    fn process_count(&self) -> usize {
        self.txs.len()
    }

    fn tvar_count(&self) -> usize {
        self.vars.len()
    }

    fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Outcome {
        let k = process.index();
        assert!(k < self.txs.len(), "process out of range");
        if matches!(self.txs[k], TxState::Doomed) {
            self.txs[k] = TxState::Idle;
            return Outcome::Response(Response::Aborted);
        }
        match invocation {
            Invocation::Read(x) => {
                let j = x.index();
                let tx = self.tx_mut(k);
                if let Some(&v) = tx.writes.get(&j) {
                    return Outcome::Response(Response::Value(v));
                }
                let rv = tx.rv;
                // Deferred updates: the slot value is committed state even
                // while write-locked, so readers never block on writers.
                let (value, version) = {
                    let slot = &self.vars[j];
                    (slot.value, slot.version)
                };
                if version > rv {
                    return self.abort_self(k);
                }
                self.tx_mut(k).reads.push(j);
                Outcome::Response(Response::Value(value))
            }
            Invocation::Write(x, v) => {
                let j = x.index();
                let my_age = self.tx_mut(k).age;
                match self.vars[j].writer {
                    Some(owner) if owner != k => {
                        // Eager W/W conflict: greedy CM — older wins.
                        let owner_age = self.age_of(owner).unwrap_or(u64::MAX);
                        if my_age < owner_age {
                            self.doom(owner);
                            self.vars[j].writer = Some(k);
                            self.tx_mut(k).writes.insert(j, v);
                            Outcome::Response(Response::Ok)
                        } else {
                            self.abort_self(k)
                        }
                    }
                    _ => {
                        self.vars[j].writer = Some(k);
                        self.tx_mut(k).writes.insert(j, v);
                        Outcome::Response(Response::Ok)
                    }
                }
            }
            Invocation::TryCommit => {
                let tx = self.tx_mut(k).clone();
                let valid = tx.reads.iter().all(|&j| self.vars[j].version <= tx.rv);
                if !valid {
                    return self.abort_self(k);
                }
                if !tx.writes.is_empty() {
                    self.clock += 1;
                    let wv = self.clock;
                    for (&j, &v) in &tx.writes {
                        self.vars[j] = VarSlot {
                            value: v,
                            version: wv,
                            writer: None,
                        };
                    }
                    self.release_locks(k);
                }
                self.txs[k] = TxState::Idle;
                Outcome::Response(Response::Committed)
            }
        }
    }

    fn poll(&mut self, _process: ProcessId) -> Option<Response> {
        None // aborts instead of blocking
    }

    fn has_pending(&self, _process: ProcessId) -> bool {
        false
    }

    fn fork(&self) -> BoxedTm {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn refork_from(&mut self, source: &dyn SteppedTm) -> bool {
        let Some(source) = source.as_any().and_then(|a| a.downcast_ref::<SwissTm>()) else {
            return false;
        };
        if self.txs.len() != source.txs.len() || self.vars.len() != source.vars.len() {
            return false;
        }
        self.clock = source.clock;
        self.next_age = source.next_age;
        self.vars.clone_from(&source.vars);
        for (dst, src) in self.txs.iter_mut().zip(&source.txs) {
            match (dst, src) {
                // Same-variant case reuses the read vector's and write
                // map's existing buffers instead of reallocating.
                (TxState::Active(dst), TxState::Active(src)) => {
                    dst.age = src.age;
                    dst.rv = src.rv;
                    dst.reads.clone_from(&src.reads);
                    dst.writes.clone_from(&src.writes);
                }
                (dst, src) => *dst = src.clone(),
            }
        }
        true
    }

    fn step_footprint(&self, process: ProcessId, invocation: Invocation) -> StepFootprint {
        // Audited conflict oracle. Shared state: per-variable slots
        // `(value, version, write lock)`, the global version clock, the
        // age counter, and — because the greedy contention manager dooms
        // other processes' transactions — every process's transaction
        // status. Doom checks make every step a global reader; begin
        // *draws* a fresh age (the relative age order is observable to
        // the CM), so beginning steps are global writers.
        let k = process.index();
        if matches!(self.txs[k], TxState::Doomed) {
            // Learns of its doom: responds A and clears local state only.
            let mut fp = StepFootprint::local();
            fp.global_read = true;
            fp.ends = true;
            return fp;
        }
        let tx = match &self.txs[k] {
            TxState::Active(tx) => Some(tx),
            _ => None,
        };
        let mut fp = StepFootprint::local();
        fp.global_read = true; // doom flag, set by other processes' CM
        if tx.is_none() {
            fp.global_write = true; // begin draws next_age + 1
        }
        match invocation {
            Invocation::Read(x) => {
                let j = x.index();
                if tx.is_some_and(|tx| tx.writes.contains_key(&j)) {
                    return fp; // served from the local write buffer
                }
                fp.add_read(x);
                fp.ends = tx.is_some_and(|tx| self.vars[j].version > tx.rv);
            }
            Invocation::Write(x, _) => {
                let j = x.index();
                fp.add_write(x); // acquires (or steals) the write lock
                if self.vars[j].writer.is_some_and(|o| o != k) {
                    // Eager W/W conflict: either dooms the owner
                    // (releasing its locks across variables) or aborts
                    // self (releasing own locks) — both mutate another
                    // process's transaction state or multi-variable lock
                    // state, so the step is a global writer.
                    fp.global_write = true;
                    let my_age = tx.map_or(self.next_age + 1, |tx| tx.age);
                    let owner_age = self
                        .age_of(self.vars[j].writer.expect("checked above"))
                        .unwrap_or(u64::MAX);
                    fp.ends = my_age >= owner_age; // younger loses: self-abort
                    if let Some(tx) = tx {
                        for &j in tx.writes.keys() {
                            fp.add_write_index(j); // lock releases on loss
                        }
                    }
                }
            }
            Invocation::TryCommit => {
                fp.ends = true;
                if let Some(tx) = tx {
                    for &j in &tx.reads {
                        fp.add_read_index(j); // commit-time validation
                    }
                    if !tx.writes.is_empty() {
                        fp.global_write = true; // clock bump
                        for &j in tx.writes.keys() {
                            fp.add_write_index(j); // publish + unlock
                        }
                    }
                }
            }
        }
        fp
    }

    fn state_digest(&self) -> Option<u64> {
        use std::hash::Hash;
        // Two unbounded counters, both compared only relatively, both
        // rank-canonicalized (see [`SteppedTm::state_digest`]):
        //
        // * the version clock (`version > rv`; commit draws a fresh
        //   maximum) — ranked over `{clock, versions, rvs}`;
        // * transaction ages (greedy CM compares `my_age < owner_age`;
        //   a fresh transaction draws `next_age + 1`, a fresh maximum
        //   above every *active* age) — ranked among active ages, with
        //   `next_age` itself excluded.
        let mut stamps = Vec::with_capacity(self.vars.len() + self.txs.len() + 1);
        stamps.push(self.clock);
        stamps.extend(self.vars.iter().map(|s| s.version));
        let mut ages = Vec::with_capacity(self.txs.len());
        for tx in &self.txs {
            if let TxState::Active(tx) = tx {
                stamps.push(tx.rv);
                ages.push(tx.age);
            }
        }
        let stamps = crate::fingerprint::Ranks::new(stamps);
        let ages = crate::fingerprint::Ranks::new(ages);
        let rank = |t: u64| stamps.rank(t);
        let age_rank = |a: u64| ages.rank(a);
        let mut h = tm_core::StableHasher::new();
        rank(self.clock).hash(&mut h);
        for slot in &self.vars {
            (slot.value, rank(slot.version), slot.writer).hash(&mut h);
        }
        for tx in &self.txs {
            match tx {
                TxState::Idle => 0u8.hash(&mut h),
                TxState::Doomed => 2u8.hash(&mut h),
                TxState::Active(tx) => {
                    1u8.hash(&mut h);
                    (age_rank(tx.age), rank(tx.rv)).hash(&mut h);
                    tx.reads.hash(&mut h);
                    tx.writes.hash(&mut h);
                }
            }
        }
        Some(std::hash::Hasher::finish(&h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorded;
    use tm_core::Invocation as Inv;
    use tm_safety::is_opaque;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    fn resp(tm: &mut impl SteppedTm, p: ProcessId, inv: Inv) -> Response {
        tm.invoke(p, inv).response().expect("swiss never blocks")
    }

    #[test]
    fn greedy_cm_older_writer_wins() {
        let mut tm = SwissTm::new(2, 1);
        resp(&mut tm, P1, Inv::Write(X, 1)); // p1 begins first (older)
        assert_eq!(resp(&mut tm, P2, Inv::Write(X, 2)), Response::Aborted);
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
        assert_eq!(tm.committed_value(X), 1);
    }

    #[test]
    fn greedy_cm_younger_owner_is_doomed() {
        let mut tm = SwissTm::new(2, 1);
        // p1 begins first (older) by reading y... single var here: use a
        // read on x to establish age, then p2 acquires the lock, then p1's
        // write steals it back.
        resp(&mut tm, P1, Inv::Read(X)); // p1: age 1
        resp(&mut tm, P2, Inv::Write(X, 2)); // p2: age 2, owns x
        assert_eq!(resp(&mut tm, P1, Inv::Write(X, 1)), Response::Ok); // steals
                                                                       // p2 learns of its doom at its next event.
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Aborted);
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
        assert_eq!(tm.committed_value(X), 1);
    }

    #[test]
    fn no_livelock_under_alternating_steal() {
        // The ABL2 schedule that livelocks DSTM: with greedy CM the older
        // transaction always survives, so someone commits every round.
        let mut tm = SwissTm::new(2, 1);
        let mut commits = 0;
        resp(&mut tm, P1, Inv::Write(X, 1));
        resp(&mut tm, P2, Inv::Write(X, 2)); // younger: aborts itself
        for _ in 0..100 {
            if resp(&mut tm, P1, Inv::TryCommit) == Response::Committed {
                commits += 1;
            }
            let _ = resp(&mut tm, P1, Inv::Write(X, 1));
            if resp(&mut tm, P2, Inv::TryCommit) == Response::Committed {
                commits += 1;
            }
            let _ = resp(&mut tm, P2, Inv::Write(X, 2));
        }
        assert!(commits >= 99, "greedy CM must prevent livelock ({commits})");
    }

    #[test]
    fn readers_pass_through_write_locks() {
        // Deferred updates: p2 can read x while p1 holds its write lock —
        // the distinction from TinySTM's write-through design.
        let mut tm = SwissTm::new(2, 1);
        resp(&mut tm, P1, Inv::Write(X, 9));
        assert_eq!(resp(&mut tm, P2, Inv::Read(X)), Response::Value(0));
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Committed);
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
        assert_eq!(tm.committed_value(X), 9);
    }

    #[test]
    fn crashed_lock_holder_starves_writers_but_not_readers() {
        // §3.2.3: SwissTM keeps solo progress only crash-free — an
        // orphaned write lock starves conflicting *writers*; readers of
        // the same variable keep committing (deferred updates).
        let mut tm = SwissTm::new(3, 1);
        resp(&mut tm, P1, Inv::Write(X, 1)); // p1 then "crashes"
        for _ in 0..50 {
            // p2, a writer, aborts forever (it is always younger).
            assert_eq!(resp(&mut tm, P2, Inv::Write(X, 2)), Response::Aborted);
            // p3, a reader, commits forever.
            assert_eq!(
                resp(&mut tm, ProcessId(2), Inv::Read(X)),
                Response::Value(0)
            );
            assert_eq!(
                resp(&mut tm, ProcessId(2), Inv::TryCommit),
                Response::Committed
            );
        }
    }

    #[test]
    fn read_validation_aborts_stale_snapshots() {
        let mut tm = SwissTm::new(2, 2);
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(0));
        resp(&mut tm, P2, Inv::Write(X, 1));
        resp(&mut tm, P2, Inv::Write(Y, 1));
        resp(&mut tm, P2, Inv::TryCommit);
        // p1's read of y sees version > rv: abort at the read.
        assert_eq!(resp(&mut tm, P1, Inv::Read(Y)), Response::Aborted);
    }

    #[test]
    fn algorithm_1_pattern_starves_reader() {
        let mut tm = Recorded::new(SwissTm::new(2, 1));
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(0));
        assert_eq!(resp(&mut tm, P2, Inv::Read(X)), Response::Value(0));
        resp(&mut tm, P2, Inv::Write(X, 1));
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Committed);
        resp(&mut tm, P1, Inv::Write(X, 1));
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Aborted);
        assert!(is_opaque(tm.history()));
    }

    #[test]
    fn random_interleaving_histories_are_opaque() {
        let mut tm = Recorded::new(SwissTm::new(3, 2));
        let mut seed = 0xABCDu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..400 {
            let p = ProcessId((rng() % 3) as usize);
            let x = TVarId((rng() % 2) as usize);
            let inv = match rng() % 4 {
                0 | 1 => Inv::Read(x),
                2 => Inv::Write(x, rng() % 4),
                _ => Inv::TryCommit,
            };
            tm.invoke(p, inv);
        }
        let mut checker = tm_safety::IncrementalChecker::new(tm_safety::Mode::Opacity);
        checker
            .push_all(tm.history().iter().copied())
            .expect("every SwissTM prefix must be opaque");
    }
}
