//! Recording wrapper for concurrent TMs: real multi-threaded executions
//! as formal histories.
//!
//! [`RecordingTm`] wraps any [`ConcurrentTm`] and logs every operation as
//! invocation/response events in a mutex-protected [`History`]. The
//! invocation event is logged *before* the underlying operation starts and
//! the response event *after* it returns, so the recorded interleaving is
//! a faithful history of the execution (the recorded real-time order is a
//! sub-order of physical real time, which only makes the opacity check
//! stricter about what it may reorder). This lets the exact checkers of
//! `tm-safety` verify real thread interleavings of the concurrent TL2 /
//! NOrec / global-lock implementations — closing the loop between the
//! formal model and the atomics-based code.

use parking_lot::Mutex;

use tm_core::{Event, History, ProcessId, TVarId, Value};
use tm_telemetry::{Counter, Telemetry};

use super::api::{ConcurrentTm, Transaction, TxAbort};

/// A history-recording wrapper around a concurrent TM.
///
/// Threads identify themselves with a [`ProcessId`] when starting
/// transactions via [`RecordingTm::begin_as`].
///
/// The global mutex serializes every event append, which caps recording
/// throughput at one core regardless of the wrapped TM — fine for the
/// bounded differential suites this type serves, wrong for sustained
/// load. The production path is the sharded recorder
/// ([`super::sharded::ShardedRecorder`]), which replaces the mutex with
/// per-thread logs and atomic sequence stamps.
#[derive(Debug)]
pub struct RecordingTm<T> {
    inner: T,
    history: Mutex<History>,
    telemetry: Telemetry,
}

impl<T: ConcurrentTm> RecordingTm<T> {
    /// Wraps a concurrent TM with an empty history.
    pub fn new(inner: T) -> Self {
        Self::with_telemetry(inner, Telemetry::off())
    }

    /// Wraps a concurrent TM, tallying [`Counter::TxCommits`] /
    /// [`Counter::TxAborts`] from [`atomically_recorded`] into
    /// `telemetry`.
    pub fn with_telemetry(inner: T, telemetry: Telemetry) -> Self {
        RecordingTm {
            inner,
            history: Mutex::new(History::new()),
            telemetry,
        }
    }

    /// The counter handle the retry loop tallies into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The wrapped TM.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// A snapshot of the recorded history.
    pub fn history(&self) -> History {
        self.history.lock().clone()
    }

    /// Starts a transaction attributed to `process`.
    pub fn begin_as(&self, process: ProcessId) -> RecordingTx<'_, T> {
        RecordingTx {
            tm: self,
            inner: Some(self.inner.begin()),
            process,
        }
    }

    fn log(&self, event: Event) {
        self.history.lock().push(event);
    }
}

/// A recording transaction handle.
pub struct RecordingTx<'a, T: ConcurrentTm + 'a> {
    tm: &'a RecordingTm<T>,
    inner: Option<T::Tx<'a>>,
    process: ProcessId,
}

impl<'a, T: ConcurrentTm> RecordingTx<'a, T> {
    /// Transactional read, recorded.
    ///
    /// # Errors
    ///
    /// [`TxAbort`] when the underlying transaction aborts; the abort event
    /// `A_k` is recorded and the handle must be dropped.
    pub fn read(&mut self, x: TVarId) -> Result<Value, TxAbort> {
        self.tm.log(Event::read(self.process, x));
        match self.inner.as_mut().expect("live transaction").read(x) {
            Ok(v) => {
                self.tm.log(Event::value(self.process, v));
                Ok(v)
            }
            Err(TxAbort) => {
                self.tm.log(Event::aborted(self.process));
                self.inner = None;
                Err(TxAbort)
            }
        }
    }

    /// Transactional write, recorded.
    ///
    /// # Errors
    ///
    /// [`TxAbort`] when the underlying transaction aborts.
    pub fn write(&mut self, x: TVarId, v: Value) -> Result<(), TxAbort> {
        self.tm.log(Event::write(self.process, x, v));
        match self.inner.as_mut().expect("live transaction").write(x, v) {
            Ok(()) => {
                self.tm.log(Event::ok(self.process));
                Ok(())
            }
            Err(TxAbort) => {
                self.tm.log(Event::aborted(self.process));
                self.inner = None;
                Err(TxAbort)
            }
        }
    }

    /// Commit attempt, recorded as `tryC · C` or `tryC · A`.
    ///
    /// # Errors
    ///
    /// [`TxAbort`] when validation fails.
    pub fn commit(mut self) -> Result<(), TxAbort> {
        self.tm.log(Event::try_commit(self.process));
        // The commit event is appended from inside the TM's
        // serialization point (write locks / sequence lock still held,
        // or optimistically before a final validation), so the
        // history's commit order equals the TM's serialization order
        // and recorded histories stay certifiable by the commit-order
        // checker — the same discipline as the sharded recorder. A TM
        // that stamps optimistically and then fails validation gets its
        // logged commit response amended to the abort response in
        // place: the position still falls inside the tryC window, and
        // aborted transactions impose no commit-order obligation.
        let mut committed_at: Option<usize> = None;
        let result = self
            .inner
            .take()
            .expect("live transaction")
            .commit_at(&mut || {
                if committed_at.is_none() {
                    let mut history = self.tm.history.lock();
                    let index = history.len();
                    history.push(Event::committed(self.process));
                    committed_at = Some(index);
                }
            });
        match result {
            Ok(()) => {
                if committed_at.is_none() {
                    self.tm.log(Event::committed(self.process));
                }
                Ok(())
            }
            Err(TxAbort) => {
                match committed_at {
                    Some(index) => self
                        .tm
                        .history
                        .lock()
                        .amend(index, Event::aborted(self.process)),
                    None => self.tm.log(Event::aborted(self.process)),
                }
                Err(TxAbort)
            }
        }
    }

    /// Abandons the transaction, recording a completion abort if the
    /// transaction is still live (mirrors `com(H)`'s treatment of live
    /// transactions so recorded histories stay complete).
    pub fn abandon(mut self) {
        if self.inner.take().is_some() {
            self.tm.log(Event::try_commit(self.process));
            self.tm.log(Event::aborted(self.process));
        }
    }
}

/// Retry loop for recording transactions: runs `body` until commit,
/// returning the number of aborted attempts. Commit/abort tallies flush
/// through the TM's [`Telemetry`] handle (one [`Counter::TxCommits`]
/// per call, one [`Counter::TxAborts`] per retry, added at loop exit).
pub fn atomically_recorded<T, R, F>(
    tm: &RecordingTm<T>,
    process: ProcessId,
    mut body: F,
) -> (R, u64)
where
    T: ConcurrentTm,
    F: FnMut(&mut RecordingTx<'_, T>) -> Result<R, TxAbort>,
{
    let mut aborts = 0;
    loop {
        let mut tx = tm.begin_as(process);
        let committed = match body(&mut tx) {
            Ok(result) => match tx.commit() {
                Ok(()) => Some(result),
                Err(TxAbort) => None,
            },
            // The abort event was recorded by the failing operation.
            Err(TxAbort) => None,
        };
        match committed {
            Some(result) => {
                tm.telemetry.add(Counter::TxCommits, 1);
                tm.telemetry.add(Counter::TxAborts, aborts);
                return (result, aborts);
            }
            None => aborts += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::{ConcurrentNOrec, ConcurrentTl2};
    use std::sync::Arc;
    use tm_safety::{check_opacity_auto, CheckOutcome};

    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    #[test]
    fn single_thread_recording_is_well_formed_and_opaque() {
        let tm = RecordingTm::new(ConcurrentTl2::new(2));
        let p1 = ProcessId(0);
        let (_, aborts) = atomically_recorded(&tm, p1, |tx| {
            let v = tx.read(X)?;
            tx.write(Y, v + 1)
        });
        assert_eq!(aborts, 0);
        let h = tm.history();
        assert!(h.is_well_formed());
        assert!(h.is_complete());
        assert_eq!(check_opacity_auto(&h), CheckOutcome::Holds);
    }

    #[test]
    fn multi_threaded_tl2_histories_are_opaque() {
        let tm = Arc::new(RecordingTm::new(ConcurrentTl2::new(4)));
        run_threads(&tm);
        let h = tm.history();
        assert!(h.is_well_formed());
        assert_ne!(
            check_opacity_auto(&h),
            CheckOutcome::Violated,
            "real TL2 interleaving must be opaque"
        );
    }

    #[test]
    fn multi_threaded_norec_histories_are_opaque() {
        let tm = Arc::new(RecordingTm::new(ConcurrentNOrec::new(4)));
        run_threads(&tm);
        let h = tm.history();
        assert!(h.is_well_formed());
        assert_ne!(check_opacity_auto(&h), CheckOutcome::Violated);
    }

    fn run_threads<T: ConcurrentTm + Send + Sync + 'static>(tm: &Arc<RecordingTm<T>>) {
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let tm = Arc::clone(tm);
                std::thread::spawn(move || {
                    let p = ProcessId(t);
                    for i in 0..30u64 {
                        atomically_recorded(&*tm, p, |tx| {
                            let a = tx.read(TVarId((i % 4) as usize))?;
                            tx.write(TVarId(((i + 1) % 4) as usize), a + 1)
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn recorded_retry_loop_tallies_through_counters() {
        use tm_telemetry::Telemetry;
        let telemetry = Telemetry::counters();
        let tm = RecordingTm::with_telemetry(ConcurrentTl2::new(2), telemetry.clone());
        for i in 0..4u64 {
            atomically_recorded(&tm, ProcessId(0), |tx| {
                let v = tx.read(X)?;
                tx.write(Y, v + i)
            });
        }
        let snapshot = tm.telemetry().snapshot();
        assert_eq!(snapshot.get(Counter::TxCommits), 4);
        // Single-threaded TL2 never aborts.
        assert_eq!(snapshot.get(Counter::TxAborts), 0);
    }

    #[test]
    fn abandon_records_completion_abort() {
        let tm = RecordingTm::new(ConcurrentTl2::new(1));
        let mut tx = tm.begin_as(ProcessId(0));
        let _ = tx.read(X);
        tx.abandon();
        let h = tm.history();
        assert!(h.is_complete());
        assert_eq!(h.abort_count(ProcessId(0)), 1);
    }
}
