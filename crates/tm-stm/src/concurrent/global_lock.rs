//! Concurrent global-lock TM: one `parking_lot::Mutex` around the store.
//!
//! The Amdahl's-law baseline of the paper's footnote 1: perfectly simple,
//! never aborts, and serializes everything — its throughput is flat (or
//! worse) as threads are added, which the PERF1 benchmark demonstrates
//! against TL2 and NOrec.

use parking_lot::{Mutex, MutexGuard};
use tm_core::{TVarId, Value, INITIAL_VALUE};

use super::api::{ConcurrentTm, Transaction, TxAbort};

/// Global-lock concurrent TM.
#[derive(Debug)]
pub struct ConcurrentGlobalLock {
    store: Mutex<Vec<Value>>,
}

impl ConcurrentGlobalLock {
    /// Creates a store of `tvars` t-variables, all `0`.
    ///
    /// # Panics
    ///
    /// Panics if `tvars` is zero.
    pub fn new(tvars: usize) -> Self {
        assert!(tvars > 0, "need at least one t-variable");
        ConcurrentGlobalLock {
            store: Mutex::new(vec![INITIAL_VALUE; tvars]),
        }
    }

    /// Snapshot of the committed store (acquires the lock).
    pub fn snapshot(&self) -> Vec<Value> {
        self.store.lock().clone()
    }
}

/// A transaction holding the global lock for its whole duration.
pub struct GlobalLockTx<'a> {
    guard: MutexGuard<'a, Vec<Value>>,
    undo: Vec<(usize, Value)>,
}

impl Transaction for GlobalLockTx<'_> {
    fn read(&mut self, x: TVarId) -> Result<Value, TxAbort> {
        Ok(self.guard[x.index()])
    }

    fn write(&mut self, x: TVarId, v: Value) -> Result<(), TxAbort> {
        let j = x.index();
        self.undo.push((j, self.guard[j]));
        self.guard[j] = v;
        Ok(())
    }

    fn commit_at(mut self, point: &mut dyn FnMut()) -> Result<(), TxAbort> {
        self.undo.clear(); // keep the writes; dropping the guard releases the lock
        point(); // serialization point: the guard is still held here
        Ok(())
    }
}

impl Drop for GlobalLockTx<'_> {
    fn drop(&mut self) {
        // A dropped-without-commit transaction (body returned TxAbort)
        // must roll back its in-place writes. `commit` consumes `self`
        // after clearing the undo log, so committed effects survive.
        for &(j, old) in self.undo.iter().rev() {
            self.guard[j] = old;
        }
    }
}

impl ConcurrentTm for ConcurrentGlobalLock {
    type Tx<'a> = GlobalLockTx<'a>;

    fn name(&self) -> &'static str {
        "global-lock"
    }

    fn tvar_count(&self) -> usize {
        self.store.lock().len()
    }

    fn begin(&self) -> GlobalLockTx<'_> {
        GlobalLockTx {
            guard: self.store.lock(),
            undo: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::api::atomically;

    #[test]
    fn commit_applies_writes() {
        let tm = ConcurrentGlobalLock::new(1);
        atomically(&tm, |tx| tx.write(TVarId(0), 5));
        assert_eq!(tm.snapshot(), vec![5]);
    }

    #[test]
    fn threads_serialize_increments() {
        let tm = std::sync::Arc::new(ConcurrentGlobalLock::new(1));
        let threads = 4;
        let per_thread = 500;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let tm = tm.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        atomically(&*tm, |tx| {
                            let v = tx.read(TVarId(0))?;
                            tx.write(TVarId(0), v + 1)
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tm.snapshot(), vec![threads * per_thread]);
    }
}
