//! Concurrent (thread-driven) TM implementations on real atomics.
//!
//! Three algorithms spanning the conflict-granularity spectrum the paper's
//! footnote 1 alludes to (resilient TMs scale, coarse locks do not):
//!
//! * [`ConcurrentGlobalLock`] — one mutex, never aborts, never scales;
//! * [`ConcurrentTl2`] — per-t-variable versioned write-locks and a global
//!   version clock;
//! * [`ConcurrentNOrec`] — a single global sequence lock with value-based
//!   validation.
//!
//! All three guarantee that committed transactions form a serial order
//! consistent with real time. [`ConcurrentBuggy`] deliberately does not
//! (one seeded lost update) — it exists so the checking pipeline below
//! has a defect it must provably catch.
//!
//! # Recording layers: from one mutex to streaming certification
//!
//! Two recorders turn real thread interleavings into formal histories
//! the `tm-safety` checkers can verify — the bridge between the
//! atomics-based code and the paper's model:
//!
//! * [`RecordingTm`] — a global `Mutex<History>`; simple and exactly
//!   ordered, but every event append serializes on the lock, so
//!   recording itself caps throughput at one core. The right tool for
//!   bounded differential tests.
//! * [`ShardedRecorder`] — the production path. Per-thread shards
//!   append to private buffers; a global `AtomicU64` stamps every
//!   event with a dense sequence number; batches travel to the
//!   consumer once per transaction attempt over a lock-free channel.
//!
//! On top of the sharded stream, `tm_sim::online` runs the streaming
//! certification pipeline:
//!
//! ```text
//!  worker threads                    consumer side (tm_sim::online)
//!  ──────────────                    ──────────────────────────────
//!  shard 0 ─ events ─┐
//!  shard 1 ─ events ─┼─► EventStream ─► sealer ──► chunker ─► rayon pool
//!  shard 2 ─ events ─┘   (reorder by    (epoch =    (cut at     (one
//!        │                seq stamp;     merged      quiescent    IncrementalChecker
//!   AtomicU64 seq         contiguous     prefix      points +     per chunk, seeded
//!   fetch_add per         prefix =       slices)     conflict     with its frontier
//!   event                 complete                   components)  state)
//!                         history)                        │
//!                                                         ▼
//!                                              deterministic verdict fold
//!                                              (first violation by seq)
//! ```
//!
//! **Why the merge is sound.** Each event's stamp is taken inside its
//! invocation/response window (invocation stamped before the inner
//! operation starts, response after it returns), so stamp order is a
//! legitimate linearization of real time: if operation A completed
//! before B began, every stamp of A precedes every stamp of B. Sorting
//! by stamp therefore yields a faithful history — at worst *stricter*
//! about real-time order than physical time was, which only narrows
//! what the opacity check may reorder (the same argument as
//! [`RecordingTm`], with the atomic RMW's linearization point standing
//! in for the mutex).
//!
//! One event needs a sharper rule: the **commit response** is stamped
//! at the TM's *serialization point* (via [`Transaction::commit_at`]),
//! not after `commit` returns. The downstream certifier serializes
//! committed transactions in commit-*event* order, so that order must
//! equal the TM's serialization order; a post-return stamp races in
//! the window between the TM's internal unlock and the stamp, and a
//! conflicting commit that squeezes into that window records an
//! inverted commit order — a false violation the checker cannot tell
//! from a real one. The same inversion hides one layer deeper when a
//! read set is protected by versions rather than locks: validating and
//! *then* stamping leaves a window in which a writer of a read-set
//! variable can commit and stamp first. TL2 and NOrec therefore stamp
//! **optimistically, before the final read validation** — version
//! monotonicity (TL2) / value equality under a stable sequence (NOrec)
//! prove retroactively that a passing validation extends back to the
//! stamp, and a commit that fails after stamping charges its stamp to
//! the abort response, which constrains nothing. Both recorders apply
//! the same discipline ([`RecordingTm`] amends an optimistically
//! logged commit back to an abort in place).
//!
//! **Why the cuts are sound.** The chunker slices the merged history
//! twice, and neither slice can mask a violation:
//!
//! 1. *Temporal cuts at quiescent points* — a segment boundary is
//!    placed only where no transaction is live, so every attempt falls
//!    entirely inside one segment. The next segment's checker is seeded
//!    with the committed state at the cut (its *frontier*) occupying
//!    slot 0 of its state sequence. A transaction that opens after the
//!    cut also opened after every pre-cut commit in real time, so the
//!    global checker would equally refuse to serialize it before them:
//!    slot 0 = frontier loses no candidate and admits no new one.
//! 2. *Conflict-component splits within a segment* — transactions and
//!    t-variables are grouped by union-find (a transaction joins every
//!    variable it reads or writes, mirroring dbcop's communication
//!    graph), so the segment's variables *partition* across components.
//!    A read of `x` is then certified against exactly the commits that
//!    write `x` — commits in other components touch disjoint variables
//!    and cannot change any value the component observes. Slot
//!    positions renumber (component-local commit counts instead of
//!    global ones), but the gaps between a component's commits
//!    correspond one-to-one to the global gaps between them, so a
//!    serialization exists component-locally iff it exists globally.
//!
//! The differential and decomposition property suites
//! (`tests/online_differential.rs`) pin both arguments executably:
//! chunked verdicts must equal whole-history verdicts on recorded
//! multi-threaded runs and on adversarial random histories alike.

pub mod api;
pub mod buggy;
pub mod global_lock;
pub mod norec;
pub mod recording;
pub mod sharded;
pub mod tl2;

pub use api::{atomically, atomically_telemetered, ConcurrentTm, Transaction, TxAbort};
pub use buggy::ConcurrentBuggy;
pub use global_lock::ConcurrentGlobalLock;
pub use norec::ConcurrentNOrec;
pub use recording::{atomically_recorded, RecordingTm, RecordingTx};
pub use sharded::{
    atomically_sharded, EventStream, ShardWriter, ShardedRecorder, ShardedTx, StampedEvent,
    StreamStatus,
};
pub use tl2::ConcurrentTl2;
