//! Concurrent (thread-driven) TM implementations on real atomics.
//!
//! Three algorithms spanning the conflict-granularity spectrum the paper's
//! footnote 1 alludes to (resilient TMs scale, coarse locks do not):
//!
//! * [`ConcurrentGlobalLock`] — one mutex, never aborts, never scales;
//! * [`ConcurrentTl2`] — per-t-variable versioned write-locks and a global
//!   version clock;
//! * [`ConcurrentNOrec`] — a single global sequence lock with value-based
//!   validation.
//!
//! All three guarantee that committed transactions form a serial order
//! consistent with real time. [`RecordingTm`] wraps any of them to log
//! real thread interleavings as formal histories, which the `tm-safety`
//! checkers then verify — the bridge between the atomics-based code and
//! the paper's model.

pub mod api;
pub mod global_lock;
pub mod norec;
pub mod recording;
pub mod tl2;

pub use api::{atomically, ConcurrentTm, Transaction, TxAbort};
pub use global_lock::ConcurrentGlobalLock;
pub use norec::ConcurrentNOrec;
pub use recording::{atomically_recorded, RecordingTm, RecordingTx};
pub use tl2::ConcurrentTl2;
