//! Sharded, sequence-stamped recording for production traffic.
//!
//! [`RecordingTm`](super::RecordingTm) serializes every event append
//! through one global mutex — correct, but a hard single-core ceiling on
//! recording throughput. [`ShardedRecorder`] removes the mutex from the
//! hot path entirely:
//!
//! * **per-thread shards** — each worker thread owns a [`ShardWriter`]
//!   with a private append-only event buffer; no cross-thread writes,
//!   no locks, no false sharing on the log;
//! * **atomic sequence stamps** — one global `AtomicU64` is
//!   `fetch_add`ed per event, giving every invocation/response a dense
//!   global sequence number. The stamp for an invocation is taken
//!   *before* the underlying operation starts and the stamp for its
//!   response *after* it returns, so sorting by stamp yields a faithful
//!   real-time-consistent history — the same argument as the mutexed
//!   recorder, with the stamp's RMW linearization point standing in for
//!   the mutex acquisition. Commit responses are stamped more
//!   precisely: *at the TM's serialization point*, from inside
//!   [`Transaction::commit_at`] (possibly optimistically, before the
//!   TM's final validation — a failed commit's stamp is charged to its
//!   abort response), so the merged order of commit events equals the
//!   TM's serialization order — the witness order the commit-order
//!   certifier checks (stamping after `commit` returns races in the
//!   unlock-to-stamp window and records false commit inversions);
//! * **batched hand-off** — a shard sends its buffered events to the
//!   consumer once per *transaction attempt* (commit, abort, or
//!   abandon) over a lock-free channel, so the channel cost is
//!   amortized over the attempt's operations.
//!
//! The consumer end is [`EventStream`]: a reorder buffer that merges
//! the per-shard batches back into one stream by sequence number.
//! Because stamps are dense (`fetch_add(1)` per event, no gaps), the
//! contiguous stamp prefix of the buffer is exactly the complete merged
//! history so far — no quiescence protocol, no epoch barriers stalling
//! writers. A long-running straggler transaction simply holds back the
//! prefix, which downstream surfaces honestly as checker lag rather
//! than being papered over by reordering.
//!
//! `tm_sim::online` builds the epoch sealer, chunker, and parallel
//! certifier on top of this stream; the layer diagram lives in the
//! [`concurrent`](super) module docs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};

use parking_lot::Mutex;

use tm_core::{Event, ProcessId, TVarId, Value};
use tm_telemetry::{Counter, Telemetry};

use super::api::{ConcurrentTm, Transaction, TxAbort};

/// A recorded event together with its dense global sequence stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StampedEvent {
    /// Position in the merged history (dense: every value in
    /// `0..total` occurs exactly once).
    pub seq: u64,
    /// The history event.
    pub event: Event,
}

/// Batches travel shard → consumer once per transaction attempt.
type Batch = Vec<StampedEvent>;

/// A sharded, lock-free history recorder around a concurrent TM.
///
/// Created with [`ShardedRecorder::new`], which also returns the
/// consumer-side [`EventStream`]. Worker threads obtain per-thread
/// [`ShardWriter`]s via [`ShardedRecorder::shard`]; when the workload is
/// done (all writers dropped) and [`ShardedRecorder::close`] has been
/// called, the stream reports end-of-history.
#[derive(Debug)]
pub struct ShardedRecorder<T> {
    inner: T,
    seq: AtomicU64,
    telemetry: Telemetry,
    /// Prototype sender, cloned once per shard. Behind a mutex only so
    /// the recorder stays `Sync`; the hot path never touches it.
    sender: Mutex<Option<Sender<Batch>>>,
}

impl<T: ConcurrentTm> ShardedRecorder<T> {
    /// Wraps `inner`, returning the recorder and the merged event
    /// stream its shards feed.
    pub fn new(inner: T) -> (Self, EventStream) {
        Self::with_telemetry(inner, Telemetry::off())
    }

    /// [`ShardedRecorder::new`] with a telemetry handle: shards tally
    /// [`Counter::OpsRecorded`] (once per batch flush) and the
    /// [`atomically_sharded`] loop tallies [`Counter::TxCommits`] /
    /// [`Counter::TxAborts`].
    pub fn with_telemetry(inner: T, telemetry: Telemetry) -> (Self, EventStream) {
        let (tx, rx) = channel();
        let recorder = ShardedRecorder {
            inner,
            seq: AtomicU64::new(0),
            telemetry,
            sender: Mutex::new(Some(tx)),
        };
        (recorder, EventStream::new(rx))
    }

    /// The wrapped TM.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The telemetry handle shards and retry loops tally into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Creates the calling thread's shard, attributing its events to
    /// `process`.
    ///
    /// # Panics
    ///
    /// Panics if the recorder was already [`close`](Self::close)d.
    pub fn shard(&self, process: ProcessId) -> ShardWriter<'_, T> {
        let sender = self
            .sender
            .lock()
            .as_ref()
            .expect("recorder already closed")
            .clone();
        ShardWriter {
            recorder: self,
            sender,
            process,
            batch: Vec::with_capacity(64),
            ops: 0,
        }
    }

    /// Retires the recorder's channel handle. Once every outstanding
    /// [`ShardWriter`] is dropped too, the [`EventStream`] observes
    /// end-of-history. Idempotent.
    pub fn close(&self) {
        self.sender.lock().take();
    }

    /// Events stamped so far (monotonic; racy against in-flight
    /// writers, exact once they are done).
    pub fn events_stamped(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }
}

/// One thread's private recording shard.
///
/// Not `Sync` by design — exactly one worker thread appends to it, so
/// the buffer needs no synchronization. Mirrors
/// [`RecordingTx`](super::RecordingTx)'s event discipline: invocation
/// stamped before the underlying operation, response after, abort
/// events on failure, and [`ShardedTx::abandon`] completing live
/// transactions with `tryC · A` so recorded histories stay complete.
#[derive(Debug)]
pub struct ShardWriter<'a, T: ConcurrentTm> {
    recorder: &'a ShardedRecorder<T>,
    sender: Sender<Batch>,
    process: ProcessId,
    batch: Batch,
    /// Operations since the last flush (flushed into
    /// [`Counter::OpsRecorded`] alongside the batch).
    ops: u64,
}

impl<'a, T: ConcurrentTm> ShardWriter<'a, T> {
    /// The process id this shard's events carry.
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// Stamps `event` with the next global sequence number and appends
    /// it to the shard's private buffer.
    fn log(&mut self, event: Event) {
        // AcqRel: the RMW must not be reordered with the operation it
        // brackets, so stamp order refines real-time order.
        let seq = self.recorder.seq.fetch_add(1, Ordering::AcqRel);
        self.batch.push(StampedEvent { seq, event });
    }

    /// Ships the buffered attempt to the consumer. Called at every
    /// attempt boundary (commit, abort, abandon).
    fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let capacity = self.batch.capacity();
        let batch = std::mem::replace(&mut self.batch, Vec::with_capacity(capacity));
        self.recorder
            .telemetry
            .add(Counter::OpsRecorded, std::mem::take(&mut self.ops));
        // A dropped receiver means the consumer is gone; recording
        // degrades to a no-op rather than poisoning the workload.
        let _ = self.sender.send(batch);
    }

    /// Starts a recorded transaction on this shard.
    pub fn begin(&mut self) -> ShardedTx<'_, 'a, T> {
        let inner = self.recorder.inner.begin();
        ShardedTx {
            writer: self,
            inner: Some(inner),
        }
    }
}

impl<T: ConcurrentTm> Drop for ShardWriter<'_, T> {
    fn drop(&mut self) {
        // Defensive: a panicking worker still ships what it recorded.
        self.flush();
    }
}

/// A recording transaction handle on a [`ShardWriter`].
pub struct ShardedTx<'w, 'a, T: ConcurrentTm> {
    writer: &'w mut ShardWriter<'a, T>,
    inner: Option<T::Tx<'a>>,
}

impl<T: ConcurrentTm> ShardedTx<'_, '_, T> {
    /// Transactional read, recorded.
    ///
    /// # Errors
    ///
    /// [`TxAbort`] when the underlying transaction aborts; the abort
    /// event `A_k` is recorded, the attempt is flushed, and the handle
    /// must be dropped.
    pub fn read(&mut self, x: TVarId) -> Result<Value, TxAbort> {
        let p = self.writer.process;
        self.writer.ops += 1;
        self.writer.log(Event::read(p, x));
        match self.inner.as_mut().expect("live transaction").read(x) {
            Ok(v) => {
                self.writer.log(Event::value(p, v));
                Ok(v)
            }
            Err(TxAbort) => {
                self.writer.log(Event::aborted(p));
                self.inner = None;
                self.writer.flush();
                Err(TxAbort)
            }
        }
    }

    /// Transactional write, recorded.
    ///
    /// # Errors
    ///
    /// [`TxAbort`] when the underlying transaction aborts.
    pub fn write(&mut self, x: TVarId, v: Value) -> Result<(), TxAbort> {
        let p = self.writer.process;
        self.writer.ops += 1;
        self.writer.log(Event::write(p, x, v));
        match self.inner.as_mut().expect("live transaction").write(x, v) {
            Ok(()) => {
                self.writer.log(Event::ok(p));
                Ok(())
            }
            Err(TxAbort) => {
                self.writer.log(Event::aborted(p));
                self.inner = None;
                self.writer.flush();
                Err(TxAbort)
            }
        }
    }

    /// Commit attempt, recorded as `tryC · C` or `tryC · A`; either way
    /// the attempt's batch is shipped to the consumer.
    ///
    /// # Errors
    ///
    /// [`TxAbort`] when validation fails.
    pub fn commit(mut self) -> Result<(), TxAbort> {
        let p = self.writer.process;
        self.writer.ops += 1;
        self.writer.log(Event::try_commit(p));
        // The commit response's stamp is taken *at the TM's
        // serialization point* (via [`Transaction::commit_at`], possibly
        // optimistically before the TM's final validation) — so the
        // merged order of commit events equals the TM's serialization
        // order, which is exactly the witness order the commit-order
        // certifier checks. A stamp taken after `commit` returns would
        // race: another conflicting commit can complete *and stamp*
        // inside the window between this TM's internal unlock and our
        // stamp, inverting the recorded commit order and manifesting as
        // false violations.
        let recorder = self.writer.recorder;
        let mut point_seq: Option<u64> = None;
        let result = self
            .inner
            .take()
            .expect("live transaction")
            .commit_at(&mut || {
                if point_seq.is_none() {
                    point_seq = Some(recorder.seq.fetch_add(1, Ordering::AcqRel));
                }
            });
        // Fall back to stamping now if the TM skipped its `point` call
        // (or use the taken stamp for the abort event if it called
        // `point` and then failed): either way every stamp drawn from
        // the counter lands in exactly one event, keeping the sequence
        // dense for the merge.
        let seq = point_seq.unwrap_or_else(|| recorder.seq.fetch_add(1, Ordering::AcqRel));
        let event = match result {
            Ok(()) => Event::committed(p),
            Err(TxAbort) => Event::aborted(p),
        };
        self.writer.batch.push(StampedEvent { seq, event });
        self.writer.flush();
        result
    }

    /// Abandons the transaction, recording a completion abort if it is
    /// still live (so recorded histories stay complete).
    pub fn abandon(mut self) {
        if self.inner.take().is_some() {
            let p = self.writer.process;
            self.writer.log(Event::try_commit(p));
            self.writer.log(Event::aborted(p));
            self.writer.flush();
        }
    }
}

/// Retry loop for sharded recording: runs `body` until commit,
/// returning the result and the number of aborted attempts, with
/// commit/abort tallies flushed through the recorder's counter path.
pub fn atomically_sharded<T, R, F>(writer: &mut ShardWriter<'_, T>, mut body: F) -> (R, u64)
where
    T: ConcurrentTm,
    F: FnMut(&mut ShardedTx<'_, '_, T>) -> Result<R, TxAbort>,
{
    let mut aborts = 0;
    loop {
        let mut tx = writer.begin();
        let committed = match body(&mut tx) {
            Ok(result) => match tx.commit() {
                Ok(()) => Some(result),
                Err(TxAbort) => None,
            },
            Err(TxAbort) => None,
        };
        match committed {
            Some(result) => {
                let telemetry = writer.recorder.telemetry();
                telemetry.add(Counter::TxCommits, 1);
                telemetry.add(Counter::TxAborts, aborts);
                return (result, aborts);
            }
            None => aborts += 1,
        }
    }
}

/// Min-heap entry ordered by sequence stamp alone.
#[derive(Debug)]
struct Pending(StampedEvent);

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.0.seq == other.0.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop smallest seq first.
        other.0.seq.cmp(&self.0.seq)
    }
}

/// Whether an [`EventStream`] can still produce events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamStatus {
    /// Writers may still be active; poll again.
    Open,
    /// Every shard writer and the recorder's prototype sender are gone
    /// and the reorder buffer is fully drained.
    Closed,
}

/// The consumer end of a [`ShardedRecorder`]: merges per-shard batches
/// into the single sequence-ordered history.
///
/// Owns no reference to the recorder, so it can move to a dedicated
/// consumer thread while worker threads borrow the recorder.
#[derive(Debug)]
pub struct EventStream {
    rx: Receiver<Batch>,
    reorder: std::collections::BinaryHeap<Pending>,
    next_seq: u64,
    disconnected: bool,
}

impl EventStream {
    fn new(rx: Receiver<Batch>) -> Self {
        EventStream {
            rx,
            reorder: std::collections::BinaryHeap::new(),
            next_seq: 0,
            disconnected: false,
        }
    }

    /// Sequence number the merged prefix has reached: every event with
    /// `seq < merged_up_to()` has been handed out in order.
    pub fn merged_up_to(&self) -> u64 {
        self.next_seq
    }

    fn absorb(&mut self, batch: Batch) {
        for stamped in batch {
            self.reorder.push(Pending(stamped));
        }
    }

    fn drain_prefix(&mut self, out: &mut Vec<StampedEvent>) -> usize {
        let before = out.len();
        while let Some(top) = self.reorder.peek() {
            if top.0.seq != self.next_seq {
                break;
            }
            let Pending(stamped) = self.reorder.pop().expect("peeked");
            self.next_seq += 1;
            out.push(stamped);
        }
        out.len() - before
    }

    /// Waits up to `timeout` for progress, then appends every newly
    /// contiguous event (in sequence order) to `out`.
    ///
    /// Returns [`StreamStatus::Closed`] once all writers are gone and
    /// the buffer is drained; `out` may still have received final
    /// events on that call.
    pub fn poll(
        &mut self,
        timeout: std::time::Duration,
        out: &mut Vec<StampedEvent>,
    ) -> StreamStatus {
        use std::sync::mpsc::{RecvTimeoutError, TryRecvError};
        if !self.disconnected {
            // One bounded wait, then drain whatever else is ready.
            match self.rx.recv_timeout(timeout) {
                Ok(batch) => self.absorb(batch),
                Err(RecvTimeoutError::Disconnected) => self.disconnected = true,
                Err(RecvTimeoutError::Timeout) => {}
            }
            loop {
                match self.rx.try_recv() {
                    Ok(batch) => self.absorb(batch),
                    Err(TryRecvError::Disconnected) => {
                        self.disconnected = true;
                        break;
                    }
                    Err(TryRecvError::Empty) => break,
                }
            }
        }
        self.drain_prefix(out);
        if self.disconnected && self.reorder.is_empty() {
            StreamStatus::Closed
        } else {
            StreamStatus::Open
        }
    }

    /// Blocks until the stream closes and returns the complete merged
    /// history (convenience for tests and offline replay).
    pub fn drain_all(mut self) -> Vec<StampedEvent> {
        let mut out = Vec::new();
        while self.poll(std::time::Duration::from_millis(50), &mut out) == StreamStatus::Open {}
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::{ConcurrentNOrec, ConcurrentTl2};
    use tm_core::History;
    use tm_safety::{check_opacity_auto, CheckOutcome};

    const X: TVarId = TVarId(0);

    fn merged_history(events: &[StampedEvent]) -> History {
        let mut h = History::new();
        for stamped in events {
            h.push(stamped.event);
        }
        h
    }

    #[test]
    fn stamps_are_dense_and_merge_in_order() {
        let (recorder, stream) = ShardedRecorder::new(ConcurrentTl2::new(2));
        let mut shard = recorder.shard(ProcessId(0));
        for i in 0..10u64 {
            atomically_sharded(&mut shard, |tx| {
                let v = tx.read(X)?;
                tx.write(X, v + i)
            });
        }
        drop(shard);
        recorder.close();
        let events = stream.drain_all();
        assert!(!events.is_empty());
        for (i, stamped) in events.iter().enumerate() {
            assert_eq!(stamped.seq, i as u64, "merged stream must be dense");
        }
        let h = merged_history(&events);
        assert!(h.is_well_formed());
        assert!(h.is_complete());
        assert_eq!(check_opacity_auto(&h), CheckOutcome::Holds);
    }

    #[test]
    fn multi_threaded_merge_is_a_faithful_opaque_history() {
        let (recorder, stream) = ShardedRecorder::new(ConcurrentNOrec::new(4));
        std::thread::scope(|s| {
            for t in 0..3 {
                let mut shard = recorder.shard(ProcessId(t));
                s.spawn(move || {
                    for i in 0..40u64 {
                        atomically_sharded(&mut shard, |tx| {
                            let a = tx.read(TVarId((i % 4) as usize))?;
                            tx.write(TVarId(((i + 1) % 4) as usize), a + 1)
                        });
                    }
                });
            }
        });
        recorder.close();
        let events = stream.drain_all();
        for (i, stamped) in events.iter().enumerate() {
            assert_eq!(stamped.seq, i as u64);
        }
        let h = merged_history(&events);
        assert!(h.is_well_formed());
        assert_ne!(
            check_opacity_auto(&h),
            CheckOutcome::Violated,
            "real NOrec interleavings must be opaque"
        );
    }

    #[test]
    fn abandon_completes_the_recorded_attempt() {
        let (recorder, stream) = ShardedRecorder::new(ConcurrentTl2::new(1));
        let mut shard = recorder.shard(ProcessId(0));
        let mut tx = shard.begin();
        let _ = tx.read(X);
        tx.abandon();
        drop(shard);
        recorder.close();
        let h = merged_history(&stream.drain_all());
        assert!(h.is_complete());
        assert_eq!(h.abort_count(ProcessId(0)), 1);
    }

    #[test]
    fn ops_and_outcomes_reach_the_counters() {
        use tm_telemetry::Telemetry;
        let telemetry = Telemetry::counters();
        let (recorder, stream) =
            ShardedRecorder::with_telemetry(ConcurrentTl2::new(1), telemetry.clone());
        let mut shard = recorder.shard(ProcessId(0));
        for _ in 0..5 {
            atomically_sharded(&mut shard, |tx| {
                let v = tx.read(X)?;
                tx.write(X, v + 1)
            });
        }
        drop(shard);
        recorder.close();
        let events = stream.drain_all();
        let snapshot = telemetry.snapshot();
        // 5 transactions × (read + write + commit) = 15 operations.
        assert_eq!(snapshot.get(Counter::OpsRecorded), 15);
        assert_eq!(snapshot.get(Counter::TxCommits), 5);
        assert_eq!(snapshot.get(Counter::TxAborts), 0);
        assert_eq!(events.len() as u64, recorder.events_stamped());
    }
}
