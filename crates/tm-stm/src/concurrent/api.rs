//! The concurrent (thread-driven) TM interface.
//!
//! The stepped interface models the paper's asynchronous processes with an
//! explicit scheduler; the concurrent interface runs real OS threads over
//! shared atomics, which is what the throughput experiments (PERF1)
//! measure. A [`ConcurrentTm`] hands out [`Transaction`] handles; aborted
//! operations return [`TxAbort`] and the caller retries (usually via
//! [`atomically`]).

use tm_core::{TVarId, Value};

/// Marker error: the transaction has aborted and must be retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxAbort;

impl core::fmt::Display for TxAbort {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("transaction aborted")
    }
}

impl std::error::Error for TxAbort {}

/// An in-flight transaction on a [`ConcurrentTm`].
pub trait Transaction {
    /// Transactional read of `x`.
    ///
    /// # Errors
    ///
    /// [`TxAbort`] if the transaction observed a conflict and must retry.
    fn read(&mut self, x: TVarId) -> Result<Value, TxAbort>;

    /// Transactional write of `v` to `x`.
    ///
    /// # Errors
    ///
    /// [`TxAbort`] if the transaction observed a conflict and must retry.
    fn write(&mut self, x: TVarId, v: Value) -> Result<(), TxAbort>;

    /// Attempts to commit.
    ///
    /// # Errors
    ///
    /// [`TxAbort`] if validation failed; all effects are discarded.
    fn commit(self) -> Result<(), TxAbort>;
}

/// A thread-safe TM over a fixed set of `u64` t-variables.
pub trait ConcurrentTm: Send + Sync {
    /// The transaction handle type.
    type Tx<'a>: Transaction
    where
        Self: 'a;

    /// The algorithm's name (used in benchmark output).
    fn name(&self) -> &'static str;

    /// Number of t-variables.
    fn tvar_count(&self) -> usize;

    /// Starts a transaction.
    fn begin(&self) -> Self::Tx<'_>;
}

/// Runs `body` in a transaction, retrying on abort; returns the result and
/// the number of aborted attempts.
///
/// # Examples
///
/// ```
/// use tm_core::TVarId;
/// use tm_stm::concurrent::{atomically, ConcurrentGlobalLock, Transaction};
///
/// let tm = ConcurrentGlobalLock::new(1);
/// let x = TVarId(0);
/// let (old, aborts) = atomically(&tm, |tx| {
///     let v = tx.read(x)?;
///     tx.write(x, v + 1)?;
///     Ok(v)
/// });
/// assert_eq!(old, 0);
/// assert_eq!(aborts, 0); // the global lock never aborts
/// ```
pub fn atomically<T, R, F>(tm: &T, mut body: F) -> (R, u64)
where
    T: ConcurrentTm,
    F: FnMut(&mut T::Tx<'_>) -> Result<R, TxAbort>,
{
    let mut aborts = 0;
    loop {
        let mut tx = tm.begin();
        match body(&mut tx) {
            Ok(result) => match tx.commit() {
                Ok(()) => return (result, aborts),
                Err(TxAbort) => aborts += 1,
            },
            Err(TxAbort) => aborts += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::ConcurrentGlobalLock;
    use tm_core::TVarId;

    #[test]
    fn atomically_returns_body_result() {
        let tm = ConcurrentGlobalLock::new(2);
        let (sum, aborts) = atomically(&tm, |tx| {
            tx.write(TVarId(0), 3)?;
            tx.write(TVarId(1), 4)?;
            Ok(7u64)
        });
        assert_eq!(sum, 7);
        assert_eq!(aborts, 0);
        let (v, _) = atomically(&tm, |tx| Ok(tx.read(TVarId(0))? + tx.read(TVarId(1))?));
        assert_eq!(v, 7);
    }
}
