//! The concurrent (thread-driven) TM interface.
//!
//! The stepped interface models the paper's asynchronous processes with an
//! explicit scheduler; the concurrent interface runs real OS threads over
//! shared atomics, which is what the throughput experiments (PERF1)
//! measure. A [`ConcurrentTm`] hands out [`Transaction`] handles; aborted
//! operations return [`TxAbort`] and the caller retries (usually via
//! [`atomically`]).

use tm_core::{TVarId, Value};
use tm_telemetry::{Counter, Telemetry};

/// Marker error: the transaction has aborted and must be retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxAbort;

impl core::fmt::Display for TxAbort {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("transaction aborted")
    }
}

impl std::error::Error for TxAbort {}

/// An in-flight transaction on a [`ConcurrentTm`].
pub trait Transaction {
    /// Transactional read of `x`.
    ///
    /// # Errors
    ///
    /// [`TxAbort`] if the transaction observed a conflict and must retry.
    fn read(&mut self, x: TVarId) -> Result<Value, TxAbort>;

    /// Transactional write of `v` to `x`.
    ///
    /// # Errors
    ///
    /// [`TxAbort`] if the transaction observed a conflict and must retry.
    fn write(&mut self, x: TVarId, v: Value) -> Result<(), TxAbort>;

    /// Attempts to commit, invoking `point` at most once, at a moment
    /// that is the commit's *serialization point* whenever the commit
    /// goes on to succeed: if it does, the committed state at the call
    /// equals exactly what this transaction read, and every conflicting
    /// commit serializes strictly before or strictly after the call.
    ///
    /// Implementations may invoke `point` *optimistically*, before a
    /// final validation (the only way to order the stamp correctly when
    /// the read set is protected by versions rather than locks — TL2
    /// stamps and then checks that no read version moved, which proves
    /// retroactively that the reads were still intact at the stamp). A
    /// commit that fails after calling `point` simply returns
    /// [`TxAbort`]; recorders charge the stamp to the abort response,
    /// which is sound because aborted transactions impose no
    /// commit-order obligation.
    ///
    /// The hook exists for history recorders: a sequence stamp taken at
    /// the serialization point orders commit events identically to the
    /// TM's serialization order, which is what makes recorded histories
    /// certifiable by the commit-order checker
    /// (`tm_safety::IncrementalChecker`). A stamp taken after `commit`
    /// returns races with conflicting commits in the window between the
    /// TM's internal unlock and the stamp, and the inverted commit
    /// order manifests as false violations — likewise a stamp taken
    /// after validation but with no proof that validity extends to the
    /// stamp itself.
    ///
    /// # Errors
    ///
    /// [`TxAbort`] if validation failed; all effects are discarded.
    /// `point` may or may not have been called in that case.
    fn commit_at(self, point: &mut dyn FnMut()) -> Result<(), TxAbort>;

    /// Attempts to commit.
    ///
    /// # Errors
    ///
    /// [`TxAbort`] if validation failed; all effects are discarded.
    fn commit(self) -> Result<(), TxAbort>
    where
        Self: Sized,
    {
        self.commit_at(&mut || {})
    }
}

/// A thread-safe TM over a fixed set of `u64` t-variables.
pub trait ConcurrentTm: Send + Sync {
    /// The transaction handle type.
    type Tx<'a>: Transaction
    where
        Self: 'a;

    /// The algorithm's name (used in benchmark output).
    fn name(&self) -> &'static str;

    /// Number of t-variables.
    fn tvar_count(&self) -> usize;

    /// Starts a transaction.
    fn begin(&self) -> Self::Tx<'_>;
}

/// Runs `body` in a transaction, retrying on abort; returns the result and
/// the number of aborted attempts.
///
/// # Examples
///
/// ```
/// use tm_core::TVarId;
/// use tm_stm::concurrent::{atomically, ConcurrentGlobalLock, Transaction};
///
/// let tm = ConcurrentGlobalLock::new(1);
/// let x = TVarId(0);
/// let (old, aborts) = atomically(&tm, |tx| {
///     let v = tx.read(x)?;
///     tx.write(x, v + 1)?;
///     Ok(v)
/// });
/// assert_eq!(old, 0);
/// assert_eq!(aborts, 0); // the global lock never aborts
/// ```
pub fn atomically<T, R, F>(tm: &T, body: F) -> (R, u64)
where
    T: ConcurrentTm,
    F: FnMut(&mut T::Tx<'_>) -> Result<R, TxAbort>,
{
    atomically_telemetered(tm, &Telemetry::off(), body)
}

/// [`atomically`], with the retry loop's commit/abort tallies flushed
/// through the standard counter path: one [`Counter::TxCommits`]
/// increment per successful call and one [`Counter::TxAborts`] per
/// aborted attempt (added once at loop exit, so the hot path pays no
/// per-retry atomics beyond the TM's own).
pub fn atomically_telemetered<T, R, F>(tm: &T, telemetry: &Telemetry, mut body: F) -> (R, u64)
where
    T: ConcurrentTm,
    F: FnMut(&mut T::Tx<'_>) -> Result<R, TxAbort>,
{
    let mut aborts = 0;
    loop {
        let mut tx = tm.begin();
        let committed = match body(&mut tx) {
            Ok(result) => match tx.commit() {
                Ok(()) => Some(result),
                Err(TxAbort) => None,
            },
            Err(TxAbort) => None,
        };
        match committed {
            Some(result) => {
                telemetry.add(Counter::TxCommits, 1);
                telemetry.add(Counter::TxAborts, aborts);
                return (result, aborts);
            }
            None => aborts += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::ConcurrentGlobalLock;
    use tm_core::TVarId;

    #[test]
    fn atomically_returns_body_result() {
        let tm = ConcurrentGlobalLock::new(2);
        let (sum, aborts) = atomically(&tm, |tx| {
            tx.write(TVarId(0), 3)?;
            tx.write(TVarId(1), 4)?;
            Ok(7u64)
        });
        assert_eq!(sum, 7);
        assert_eq!(aborts, 0);
        let (v, _) = atomically(&tm, |tx| Ok(tx.read(TVarId(0))? + tx.read(TVarId(1))?));
        assert_eq!(v, 7);
    }

    #[test]
    fn telemetered_retry_loop_tallies_commits() {
        let tm = ConcurrentGlobalLock::new(1);
        let telemetry = Telemetry::counters();
        for _ in 0..3 {
            atomically_telemetered(&tm, &telemetry, |tx| {
                let v = tx.read(TVarId(0))?;
                tx.write(TVarId(0), v + 1)
            });
        }
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.get(Counter::TxCommits), 3);
        assert_eq!(snapshot.get(Counter::TxAborts), 0); // the lock never aborts
    }
}
