//! Concurrent TL2 on real atomics.
//!
//! The classic algorithm (Dice, Shalev, Shavit; DISC 2006):
//!
//! * a global version clock (`AtomicU64`);
//! * per-t-variable *versioned write-locks*: one `AtomicU64` whose least
//!   significant bit is the lock flag and whose upper bits are the version;
//! * invisible reads with the `v1 – value – v2` recheck;
//! * deferred writes published under commit-time locks acquired in
//!   canonical (index) order, read-set validation, then unlock-with-new-
//!   version.
//!
//! Everything is `u64`, so the store is plain `AtomicU64`s — no unsafe
//! code anywhere.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use tm_core::{TVarId, Value, INITIAL_VALUE};

use super::api::{ConcurrentTm, Transaction, TxAbort};

#[derive(Debug)]
struct Slot {
    /// `version << 1 | locked`.
    vlock: AtomicU64,
    value: AtomicU64,
}

/// Concurrent TL2 TM.
#[derive(Debug)]
pub struct ConcurrentTl2 {
    clock: AtomicU64,
    slots: Vec<Slot>,
}

impl ConcurrentTl2 {
    /// Creates a store of `tvars` t-variables, all `0`.
    ///
    /// # Panics
    ///
    /// Panics if `tvars` is zero.
    pub fn new(tvars: usize) -> Self {
        assert!(tvars > 0, "need at least one t-variable");
        ConcurrentTl2 {
            clock: AtomicU64::new(0),
            slots: (0..tvars)
                .map(|_| Slot {
                    vlock: AtomicU64::new(0),
                    value: AtomicU64::new(INITIAL_VALUE),
                })
                .collect(),
        }
    }

    /// Snapshot of the committed store (uses transactional reads, so it is
    /// consistent).
    pub fn snapshot(&self) -> Vec<Value> {
        loop {
            let mut tx = self.begin();
            let result: Result<Vec<Value>, TxAbort> =
                (0..self.slots.len()).map(|j| tx.read(TVarId(j))).collect();
            if let Ok(values) = result {
                if tx.commit().is_ok() {
                    return values;
                }
            }
        }
    }
}

/// An in-flight TL2 transaction.
pub struct Tl2Tx<'a> {
    tm: &'a ConcurrentTl2,
    rv: u64,
    reads: Vec<usize>,
    writes: BTreeMap<usize, Value>,
}

impl Transaction for Tl2Tx<'_> {
    fn read(&mut self, x: TVarId) -> Result<Value, TxAbort> {
        let j = x.index();
        if let Some(&v) = self.writes.get(&j) {
            return Ok(v);
        }
        let slot = &self.tm.slots[j];
        let v1 = slot.vlock.load(Ordering::Acquire);
        let value = slot.value.load(Ordering::Acquire);
        let v2 = slot.vlock.load(Ordering::Acquire);
        if v1 != v2 || v1 & 1 == 1 || (v1 >> 1) > self.rv {
            return Err(TxAbort);
        }
        self.reads.push(j);
        Ok(value)
    }

    fn write(&mut self, x: TVarId, v: Value) -> Result<(), TxAbort> {
        self.writes.insert(x.index(), v);
        Ok(())
    }

    fn commit_at(self, point: &mut dyn FnMut()) -> Result<(), TxAbort> {
        if self.writes.is_empty() {
            // Read-only: stamp first, then confirm every read version is
            // still ≤ rv and unlocked. Versions are monotone, so success
            // proves no conflicting commit landed up to the check — in
            // particular none between the stamp and the check — and the
            // stamp is a true serialization point. (Validating *before*
            // stamping would leave a window for a conflicting writer to
            // commit and stamp first, inverting the recorded order.)
            point();
            for &j in &self.reads {
                let v = self.tm.slots[j].vlock.load(Ordering::Acquire);
                if v & 1 == 1 || (v >> 1) > self.rv {
                    return Err(TxAbort);
                }
            }
            return Ok(());
        }
        // Phase 1: lock the write set in canonical order (BTreeMap iterates
        // sorted, so deadlock-free).
        let mut locked: Vec<(usize, u64)> = Vec::with_capacity(self.writes.len());
        for &j in self.writes.keys() {
            let slot = &self.tm.slots[j];
            let cur = slot.vlock.load(Ordering::Acquire);
            let acquired = cur & 1 == 0
                && slot
                    .vlock
                    .compare_exchange(cur, cur | 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok();
            if !acquired {
                for &(lj, lv) in &locked {
                    self.tm.slots[lj].vlock.store(lv, Ordering::Release);
                }
                return Err(TxAbort);
            }
            locked.push((j, cur));
        }
        // Phase 2: increment the clock, stamp the serialization point,
        // then validate the read set. The stamp precedes validation
        // deliberately: write-set variables are frozen by our locks, and
        // for read-only read-set variables a passing validation (version
        // ≤ rv, unlocked) proves no conflicting commit landed up to the
        // validation load — so none landed between the stamp and the
        // load either, making the stamp a true serialization point. A
        // writer of one of our read variables that stamps *before* us
        // necessarily still holds (lock observed) or has released (its
        // version observed) that variable's lock at our validation, and
        // fails it — stamping *after* validation instead would let such
        // a writer complete entirely inside the validate-to-stamp window
        // and record an inverted commit order. If validation fails after
        // the stamp, the recorder charges the stamp to the abort.
        let wv = self.tm.clock.fetch_add(1, Ordering::AcqRel) + 1;
        point();
        for &j in &self.reads {
            let valid = if let Some(&(_, pre_lock)) = locked.iter().find(|&&(lj, _)| lj == j) {
                (pre_lock >> 1) <= self.rv
            } else {
                let v = self.tm.slots[j].vlock.load(Ordering::Acquire);
                v & 1 == 0 && (v >> 1) <= self.rv
            };
            if !valid {
                for &(lj, lv) in &locked {
                    self.tm.slots[lj].vlock.store(lv, Ordering::Release);
                }
                return Err(TxAbort);
            }
        }
        // Phase 3: publish values, then release the locks at the new
        // version. Publication after the stamp is invisible to others —
        // any reader of a write-set variable sees the lock bit and
        // aborts until the release below.
        for (&j, &v) in &self.writes {
            self.tm.slots[j].value.store(v, Ordering::Release);
        }
        for &(j, _) in &locked {
            self.tm.slots[j].vlock.store(wv << 1, Ordering::Release);
        }
        Ok(())
    }
}

impl ConcurrentTm for ConcurrentTl2 {
    type Tx<'a> = Tl2Tx<'a>;

    fn name(&self) -> &'static str {
        "tl2"
    }

    fn tvar_count(&self) -> usize {
        self.slots.len()
    }

    fn begin(&self) -> Tl2Tx<'_> {
        Tl2Tx {
            tm: self,
            rv: self.clock.load(Ordering::Acquire),
            reads: Vec::new(),
            writes: BTreeMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::api::atomically;
    use std::sync::Arc;

    #[test]
    fn single_thread_semantics() {
        let tm = ConcurrentTl2::new(2);
        atomically(&tm, |tx| {
            tx.write(TVarId(0), 1)?;
            tx.write(TVarId(1), 2)
        });
        let (pair, _) = atomically(&tm, |tx| Ok((tx.read(TVarId(0))?, tx.read(TVarId(1))?)));
        assert_eq!(pair, (1, 2));
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let tm = Arc::new(ConcurrentTl2::new(1));
        let threads = 8;
        let per_thread = 1_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let tm = tm.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        atomically(&*tm, |tx| {
                            let v = tx.read(TVarId(0))?;
                            tx.write(TVarId(0), v + 1)
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tm.snapshot(), vec![threads * per_thread]);
    }

    #[test]
    fn transfer_conserves_total() {
        // Bank invariant under contention: the sum over accounts is
        // constant in every committed snapshot.
        let accounts = 8usize;
        let tm = Arc::new(ConcurrentTl2::new(accounts));
        for j in 0..accounts {
            atomically(&*tm, |tx| tx.write(TVarId(j), 100));
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tm = tm.clone();
                std::thread::spawn(move || {
                    let mut s = 0x243F6A8885A308D3u64 ^ (t as u64);
                    for _ in 0..500 {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        let from = (s % accounts as u64) as usize;
                        let to = ((s >> 8) % accounts as u64) as usize;
                        if from == to {
                            continue;
                        }
                        atomically(&*tm, |tx| {
                            let a = tx.read(TVarId(from))?;
                            let b = tx.read(TVarId(to))?;
                            if a > 0 {
                                tx.write(TVarId(from), a - 1)?;
                                tx.write(TVarId(to), b + 1)?;
                            }
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = tm.snapshot().iter().sum();
        assert_eq!(total, accounts as u64 * 100);
    }

    #[test]
    fn conflicting_read_aborts() {
        let tm = ConcurrentTl2::new(1);
        let mut t1 = tm.begin();
        let _ = t1.read(TVarId(0)).unwrap();
        // Another transaction commits a write, bumping the version.
        atomically(&tm, |tx| tx.write(TVarId(0), 9));
        // t1's next read of the same slot now exceeds rv.
        assert_eq!(t1.read(TVarId(0)), Err(TxAbort));
    }
}
