//! A deterministically buggy concurrent TM — the online pipeline's
//! canary.
//!
//! [`ConcurrentBuggy`] is a global-lock TM with one seeded defect: the
//! `drop_at`-th commit *reports success but silently discards its
//! writes* (a lost update). Every earlier and later commit is applied
//! faithfully, so the defect is a single event, not noise — and it is
//! guaranteed to surface: the store diverges from the history's
//! committed-state sequence at that commit, so the next transaction
//! that reads an affected t-variable observes a value no consistent
//! serialization can produce. On increment-style workloads the very
//! writer that lost its update reads the stale value on its next
//! attempt, which makes detection deterministic even single-threaded —
//! exactly what a differential suite needs from a fault it must *catch*.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, MutexGuard};

use tm_core::{TVarId, Value, INITIAL_VALUE};

use super::api::{ConcurrentTm, Transaction, TxAbort};

/// A global-lock TM that silently drops the writes of one seeded
/// commit.
#[derive(Debug)]
pub struct ConcurrentBuggy {
    store: Mutex<Vec<Value>>,
    commits: AtomicU64,
    /// 1-based index of the commit whose writes are discarded.
    drop_at: u64,
}

impl ConcurrentBuggy {
    /// Creates a store of `tvars` t-variables, losing the writes of the
    /// `drop_at`-th commit (1-based; `0` never triggers, yielding a
    /// correct TM).
    ///
    /// # Panics
    ///
    /// Panics if `tvars` is zero.
    pub fn new(tvars: usize, drop_at: u64) -> Self {
        assert!(tvars > 0, "need at least one t-variable");
        ConcurrentBuggy {
            store: Mutex::new(vec![INITIAL_VALUE; tvars]),
            commits: AtomicU64::new(0),
            drop_at,
        }
    }

    /// Snapshot of the committed store (acquires the lock).
    pub fn snapshot(&self) -> Vec<Value> {
        self.store.lock().clone()
    }
}

/// A transaction on [`ConcurrentBuggy`]: buffered writes published
/// under the global lock at commit — unless this commit is the seeded
/// victim.
pub struct BuggyTx<'a> {
    tm: &'a ConcurrentBuggy,
    guard: MutexGuard<'a, Vec<Value>>,
    writes: Vec<(usize, Value)>,
}

impl Transaction for BuggyTx<'_> {
    fn read(&mut self, x: TVarId) -> Result<Value, TxAbort> {
        let j = x.index();
        if let Some(&(_, v)) = self.writes.iter().rev().find(|&&(k, _)| k == j) {
            return Ok(v);
        }
        Ok(self.guard[j])
    }

    fn write(&mut self, x: TVarId, v: Value) -> Result<(), TxAbort> {
        self.writes.push((x.index(), v));
        Ok(())
    }

    fn commit_at(mut self, point: &mut dyn FnMut()) -> Result<(), TxAbort> {
        let n = self.tm.commits.fetch_add(1, Ordering::AcqRel) + 1;
        if n != self.tm.drop_at {
            for &(j, v) in &self.writes {
                self.guard[j] = v;
            }
        }
        // The seeded victim reports success with its writes discarded:
        // the lost update the certifier must catch. The serialization
        // point is marked honestly (guard held) so the *only* defect a
        // checker can find is the dropped writeback itself.
        point();
        Ok(())
    }
}

impl ConcurrentTm for ConcurrentBuggy {
    type Tx<'a> = BuggyTx<'a>;

    fn name(&self) -> &'static str {
        "buggy-lost-update"
    }

    fn tvar_count(&self) -> usize {
        self.store.lock().len()
    }

    fn begin(&self) -> BuggyTx<'_> {
        BuggyTx {
            tm: self,
            guard: self.store.lock(),
            writes: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::api::atomically;

    #[test]
    fn drops_exactly_the_seeded_commit() {
        let tm = ConcurrentBuggy::new(1, 2);
        for _ in 0..3 {
            atomically(&tm, |tx| {
                let v = tx.read(TVarId(0))?;
                tx.write(TVarId(0), v + 1)
            });
        }
        // Commit 2's increment was lost: 1, (dropped), stale+1 = 2.
        assert_eq!(tm.snapshot(), vec![2]);
    }

    #[test]
    fn drop_at_zero_is_a_correct_tm() {
        let tm = ConcurrentBuggy::new(1, 0);
        for _ in 0..4 {
            atomically(&tm, |tx| {
                let v = tx.read(TVarId(0))?;
                tx.write(TVarId(0), v + 1)
            });
        }
        assert_eq!(tm.snapshot(), vec![4]);
    }
}
