//! Concurrent NOrec on real atomics.
//!
//! One global sequence lock (even = quiescent, odd = a writer is
//! publishing) and value-based validation (Dalessandro, Spear, Scott;
//! PPoPP 2010). No per-location metadata at all — the antithesis of TL2's
//! per-variable versioned locks, which makes it the second point on the
//! conflict-granularity axis in the PERF1 benchmark.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use tm_core::{TVarId, Value, INITIAL_VALUE};

use super::api::{ConcurrentTm, Transaction, TxAbort};

/// Concurrent NOrec TM.
#[derive(Debug)]
pub struct ConcurrentNOrec {
    seq: AtomicU64,
    vals: Vec<AtomicU64>,
}

impl ConcurrentNOrec {
    /// Creates a store of `tvars` t-variables, all `0`.
    ///
    /// # Panics
    ///
    /// Panics if `tvars` is zero.
    pub fn new(tvars: usize) -> Self {
        assert!(tvars > 0, "need at least one t-variable");
        ConcurrentNOrec {
            seq: AtomicU64::new(0),
            vals: (0..tvars).map(|_| AtomicU64::new(INITIAL_VALUE)).collect(),
        }
    }

    /// Waits for an even sequence number and returns it.
    fn stable_seq(&self) -> u64 {
        loop {
            let s = self.seq.load(Ordering::Acquire);
            if s & 1 == 0 {
                return s;
            }
            std::hint::spin_loop();
        }
    }

    /// Snapshot of the committed store.
    pub fn snapshot(&self) -> Vec<Value> {
        loop {
            let s = self.stable_seq();
            let values: Vec<Value> = self
                .vals
                .iter()
                .map(|v| v.load(Ordering::Acquire))
                .collect();
            if self.seq.load(Ordering::Acquire) == s {
                return values;
            }
        }
    }
}

/// An in-flight NOrec transaction.
pub struct NOrecTx<'a> {
    tm: &'a ConcurrentNOrec,
    snapshot: u64,
    reads: Vec<(usize, Value)>,
    writes: BTreeMap<usize, Value>,
}

impl NOrecTx<'_> {
    /// Value-based validation: re-reads the read set under a stable
    /// sequence number. On success the snapshot is extended; on failure
    /// the transaction must abort.
    fn validate(&mut self) -> Result<(), TxAbort> {
        loop {
            let s = self.tm.stable_seq();
            let ok = self
                .reads
                .iter()
                .all(|&(j, v)| self.tm.vals[j].load(Ordering::Acquire) == v);
            if self.tm.seq.load(Ordering::Acquire) != s {
                continue; // a writer raced us; re-validate
            }
            if !ok {
                return Err(TxAbort);
            }
            self.snapshot = s;
            return Ok(());
        }
    }
}

impl Transaction for NOrecTx<'_> {
    fn read(&mut self, x: TVarId) -> Result<Value, TxAbort> {
        let j = x.index();
        if let Some(&v) = self.writes.get(&j) {
            return Ok(v);
        }
        loop {
            let value = self.tm.vals[j].load(Ordering::Acquire);
            if self.tm.seq.load(Ordering::Acquire) == self.snapshot {
                self.reads.push((j, value));
                return Ok(value);
            }
            self.validate()?;
        }
    }

    fn write(&mut self, x: TVarId, v: Value) -> Result<(), TxAbort> {
        self.writes.insert(x.index(), v);
        Ok(())
    }

    fn commit_at(mut self, point: &mut dyn FnMut()) -> Result<(), TxAbort> {
        if self.writes.is_empty() {
            // Read-only: stamp first, then value-validate. Success means
            // the read values equal the committed values at the
            // validation — and therefore at the stamp too: any writer
            // that changed-and-restored a read value in between leaves
            // the committed read-set values equal at both moments, and a
            // writer that left a different value fails the validation.
            // Stamping after a validation instead would let a writer
            // commit entirely inside the validate-to-stamp window and
            // record an inverted commit order; a failure after the stamp
            // is charged to the abort by the recorder.
            point();
            return self.validate();
        }
        // Acquire the global sequence lock at our snapshot, revalidating
        // whenever the snapshot is stale.
        loop {
            match self.tm.seq.compare_exchange(
                self.snapshot,
                self.snapshot + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(_) => self.validate()?,
            }
        }
        for (&j, &v) in &self.writes {
            self.tm.vals[j].store(v, Ordering::Release);
        }
        // Serialization point: values published, sequence lock still
        // held, so no conflicting commit can slip in before the mark.
        point();
        self.tm.seq.store(self.snapshot + 2, Ordering::Release);
        Ok(())
    }
}

impl ConcurrentTm for ConcurrentNOrec {
    type Tx<'a> = NOrecTx<'a>;

    fn name(&self) -> &'static str {
        "norec"
    }

    fn tvar_count(&self) -> usize {
        self.vals.len()
    }

    fn begin(&self) -> NOrecTx<'_> {
        NOrecTx {
            snapshot: self.stable_seq(),
            tm: self,
            reads: Vec::new(),
            writes: BTreeMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::api::atomically;
    use std::sync::Arc;

    #[test]
    fn single_thread_semantics() {
        let tm = ConcurrentNOrec::new(2);
        atomically(&tm, |tx| {
            tx.write(TVarId(0), 10)?;
            tx.write(TVarId(1), 20)
        });
        let (sum, _) = atomically(&tm, |tx| Ok(tx.read(TVarId(0))? + tx.read(TVarId(1))?));
        assert_eq!(sum, 30);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let tm = Arc::new(ConcurrentNOrec::new(1));
        let threads = 8;
        let per_thread = 1_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let tm = tm.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        atomically(&*tm, |tx| {
                            let v = tx.read(TVarId(0))?;
                            tx.write(TVarId(0), v + 1)
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tm.snapshot(), vec![threads * per_thread]);
    }

    #[test]
    fn disjoint_writers_conflict_anyway() {
        // NOrec's single orec: a commit to y invalidates a reader of x by
        // sequence number, but value validation saves it (x unchanged).
        let tm = ConcurrentNOrec::new(2);
        let mut t1 = tm.begin();
        assert_eq!(t1.read(TVarId(0)).unwrap(), 0);
        atomically(&tm, |tx| tx.write(TVarId(1), 5));
        // Value-based validation lets the read-only transaction commit.
        assert_eq!(t1.read(TVarId(1)).unwrap(), 5);
        assert!(t1.commit().is_ok());
    }

    #[test]
    fn writer_invalidates_reader_of_same_var() {
        let tm = ConcurrentNOrec::new(1);
        let mut t1 = tm.begin();
        assert_eq!(t1.read(TVarId(0)).unwrap(), 0);
        atomically(&tm, |tx| tx.write(TVarId(0), 5));
        assert_eq!(t1.read(TVarId(0)), Err(TxAbort));
    }
}
