//! Shared canonicalization helpers behind [`crate::SteppedTm::state_digest`].

/// Rank table for timestamp canonicalization: the sorted, deduplicated
/// multiset of every timestamp occurring in a TM state (global clock,
/// slot versions, transaction begin stamps).
///
/// Version-clock TMs (TL2, TinySTM, SwissTM) compare timestamps only
/// *relatively* (`version > rv`; commit draws a fresh maximum), so state
/// digests hash each timestamp's **rank** in this table rather than its
/// absolute value: states differing only by an order-preserving remap of
/// the clock domain digest equal, which is what lets the model checkers'
/// seen sets observe recurrence at all. This rule is the load-bearing
/// soundness contract of those digests (see
/// [`crate::SteppedTm::state_digest`]) — keep it in this one place.
pub(crate) struct Ranks(Vec<u64>);

impl Ranks {
    /// Builds the table from every timestamp the state contains. The
    /// collection must be *complete*: ranking an uncollected stamp
    /// panics rather than mis-canonicalizing.
    pub(crate) fn new(mut stamps: Vec<u64>) -> Self {
        stamps.sort_unstable();
        stamps.dedup();
        Ranks(stamps)
    }

    /// The canonical rank of a collected timestamp.
    pub(crate) fn rank(&self, stamp: u64) -> u64 {
        self.0.binary_search(&stamp).expect("stamp was collected") as u64
    }
}
