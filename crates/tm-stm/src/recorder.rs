//! History-recording wrapper for stepped TMs.
//!
//! Wraps any [`SteppedTm`] and records the produced [`History`], so that
//! safety checkers, liveness classifiers and experiment harnesses can
//! inspect exactly what the TM did.

use tm_core::{Event, History, Invocation, ProcessId, Response};

use crate::api::{BoxedTm, Outcome, SteppedTm};

/// A [`SteppedTm`] that records every event it sees.
///
/// # Examples
///
/// ```
/// use tm_core::{Invocation, ProcessId, TVarId};
/// use tm_stm::{Recorded, SteppedTm, Tl2};
///
/// let (p1, x) = (ProcessId(0), TVarId(0));
/// let mut tm = Recorded::new(Tl2::new(2, 1));
/// tm.invoke(p1, Invocation::Read(x));
/// tm.invoke(p1, Invocation::TryCommit);
/// assert_eq!(tm.history().len(), 4);
/// assert!(tm.history().is_well_formed());
/// ```
#[derive(Debug, Clone)]
pub struct Recorded<T> {
    inner: T,
    history: History,
}

impl<T: SteppedTm> Recorded<T> {
    /// Wraps a TM, starting with an empty history.
    pub fn new(inner: T) -> Self {
        Recorded {
            inner,
            history: History::new(),
        }
    }

    /// The recorded history so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The wrapped TM.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Consumes the wrapper, returning the recorded history.
    pub fn into_history(self) -> History {
        self.history
    }
}

impl<T: SteppedTm> SteppedTm for Recorded<T> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn process_count(&self) -> usize {
        self.inner.process_count()
    }

    fn tvar_count(&self) -> usize {
        self.inner.tvar_count()
    }

    fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Outcome {
        self.history.push(Event::invocation(process, invocation));
        let outcome = self.inner.invoke(process, invocation);
        if let Outcome::Response(resp) = outcome {
            self.history.push(Event::response(process, resp));
        }
        outcome
    }

    fn poll(&mut self, process: ProcessId) -> Option<Response> {
        let resp = self.inner.poll(process)?;
        self.history.push(Event::response(process, resp));
        Some(resp)
    }

    fn has_pending(&self, process: ProcessId) -> bool {
        self.inner.has_pending(process)
    }

    fn fork(&self) -> BoxedTm {
        // Type-erase the inner TM through its own fork, so recording
        // wrappers participate in model-checker branching regardless of
        // whether `T` itself is `Clone`.
        Box::new(Recorded {
            inner: self.inner.fork(),
            history: self.history.clone(),
        })
    }

    fn disjoint_var_ops_commute(&self) -> bool {
        self.inner.disjoint_var_ops_commute()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_lock::GlobalLock;
    use crate::tl2::Tl2;
    use tm_core::TVarId;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);

    #[test]
    fn records_immediate_responses() {
        let mut tm = Recorded::new(Tl2::new(1, 1));
        tm.invoke(P1, Invocation::Read(X));
        assert_eq!(tm.history().len(), 2);
        let events = tm.history().events();
        assert!(events[0].is_invocation());
        assert!(events[1].is_response());
    }

    #[test]
    fn records_pending_then_polled_responses() {
        let mut tm = Recorded::new(GlobalLock::new(2, 1));
        tm.invoke(P1, Invocation::Read(X)); // holds the lock
        let out = tm.invoke(P2, Invocation::Read(X));
        assert!(out.is_pending());
        // Invocation recorded, response not yet.
        assert_eq!(tm.history().len(), 3);
        assert!(tm.has_pending(P2));
        // Release the lock; poll delivers and records.
        tm.invoke(P1, Invocation::TryCommit);
        let r = tm.poll(P2);
        assert_eq!(r, Some(Response::Value(0)));
        assert_eq!(tm.history().len(), 6);
        assert!(tm.history().is_well_formed());
    }
}
