//! The catalogue of stepped TM implementations.
//!
//! Experiment harnesses iterate over *every* algorithm; this module is the
//! single place that knows how to instantiate them all.

use tm_automata::FgpVariant;

use crate::api::BoxedTm;
use crate::dstm::Dstm;
use crate::fgp::FgpTm;
use crate::global_lock::GlobalLock;
use crate::norec::NOrec;
use crate::ostm::Ostm;
use crate::swiss::SwissTm;
use crate::tiny::TinyStm;
use crate::tl2::Tl2;

/// All non-blocking opaque TMs (every invocation gets an immediate
/// response): the population for the Theorem 1 adversary experiments.
///
/// Note the deliberate exclusion of [`FgpVariant::Literal`], which is not
/// opaque (see `tm_automata::fgp`); [`literal_fgp`] provides it for the
/// experiments that demonstrate the violation.
pub fn nonblocking_catalog(processes: usize, tvars: usize) -> Vec<BoxedTm> {
    vec![
        Box::new(FgpTm::new(processes, tvars, FgpVariant::CpOnly)),
        Box::new(FgpTm::new(processes, tvars, FgpVariant::Strict)),
        Box::new(Tl2::new(processes, tvars)),
        Box::new(TinyStm::new(processes, tvars)),
        Box::new(SwissTm::new(processes, tvars)),
        Box::new(NOrec::new(processes, tvars)),
        Box::new(Ostm::new(processes, tvars)),
        Box::new(Dstm::new(processes, tvars)),
    ]
}

/// Every stepped TM, including the blocking global-lock TM.
pub fn full_catalog(processes: usize, tvars: usize) -> Vec<BoxedTm> {
    let mut tms = nonblocking_catalog(processes, tvars);
    tms.push(Box::new(GlobalLock::new(processes, tvars)));
    tms
}

/// The literal (buggy, non-opaque) reading of the paper's `Fgp` formal
/// rules, kept out of [`nonblocking_catalog`] deliberately.
pub fn literal_fgp(processes: usize, tvars: usize) -> BoxedTm {
    Box::new(FgpTm::new(processes, tvars, FgpVariant::Literal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Outcome, SteppedTm, TmPool};

    #[test]
    fn catalog_names_are_unique() {
        let tms = full_catalog(2, 1);
        let mut names: Vec<&str> = tms.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert_eq!(before, 9);
    }

    #[test]
    fn catalog_respects_configuration() {
        for tm in full_catalog(3, 2) {
            assert_eq!(tm.process_count(), 3, "{}", tm.name());
            assert_eq!(tm.tvar_count(), 2, "{}", tm.name());
        }
    }

    #[test]
    fn literal_fgp_is_separate() {
        assert_eq!(literal_fgp(2, 1).name(), "fgp-literal");
        assert!(nonblocking_catalog(2, 1)
            .iter()
            .all(|t| t.name() != "fgp-literal"));
    }

    #[test]
    fn forks_are_independent_and_faithful() {
        use tm_core::{Invocation, ProcessId, Response, TVarId};
        let (p1, p2, x) = (ProcessId(0), ProcessId(1), TVarId(0));
        for mut tm in full_catalog(2, 1) {
            // Step into the middle of a transaction, then fork.
            tm.invoke(p1, Invocation::Read(x));
            let mut fork = tm.fork();
            assert_eq!(fork.name(), tm.name());
            assert_eq!(fork.process_count(), tm.process_count());
            assert_eq!(fork.tvar_count(), tm.tvar_count());
            assert_eq!(fork.has_pending(p1), tm.has_pending(p1));
            // Determinism: the fork answers the next step exactly as the
            // original does.
            let a = tm.invoke(p2, Invocation::Write(x, 3));
            let b = fork.invoke(p2, Invocation::Write(x, 3));
            assert_eq!(a, b, "{}", tm.name());
            // Independence: stepping the fork further must not leak back
            // into the original (only legal if p2 is not blocked).
            let before = tm.has_pending(p2);
            match b {
                Outcome::Response(Response::Ok) => {
                    fork.invoke(p2, Invocation::TryCommit);
                }
                Outcome::Response(_) | Outcome::Pending => {
                    fork.poll(p2);
                }
            }
            assert_eq!(tm.has_pending(p2), before, "{}", tm.name());
        }
    }

    #[test]
    fn every_catalog_tm_recycles_through_the_pool() {
        use tm_core::{Invocation, ProcessId, TVarId};
        // The whole catalogue (and the buggy literal Fgp) implements the
        // allocation-free refork fast path, so every pool recycles — and
        // a recycled box is observationally a fork. This is the pool
        // plumbing every search driver relies on (TmPool::for_tm per
        // exploration): no explorer pays an allocating fork.
        let mut tms = full_catalog(2, 1);
        tms.push(literal_fgp(2, 1));
        for mut tm in tms {
            let mut pool = TmPool::for_tm(&tm);
            assert!(pool.recycles(), "{}", tm.name());
            tm.invoke(ProcessId(0), Invocation::Read(TVarId(0)));
            let child = pool.fork_child(&tm);
            assert_eq!(
                child.has_pending(ProcessId(0)),
                tm.has_pending(ProcessId(0))
            );
            assert_eq!(child.state_digest(), tm.state_digest(), "{}", tm.name());
            pool.put_back(child);
            // The recycled box is reforked in place on the next branch.
            let again = pool.fork_child(&tm);
            assert_eq!(again.state_digest(), tm.state_digest(), "{}", tm.name());
        }
    }

    #[test]
    fn disabled_pool_never_recycles() {
        let tm = literal_fgp(2, 1);
        let mut pool = TmPool::disabled();
        assert!(!pool.recycles());
        let child = pool.fork_child(&tm);
        pool.put_back(child); // dropped, not stored
        assert!(!pool.recycles());
    }

    #[test]
    fn forked_literal_fgp_preserves_the_bug_surface() {
        // Forking the buggy literal variant keeps its name (and thereby
        // its exclusion from the opaque catalogue).
        let tm = literal_fgp(2, 1);
        assert_eq!(tm.fork().name(), "fgp-literal");
    }
}
