//! The catalogue of stepped TM implementations.
//!
//! Experiment harnesses iterate over *every* algorithm; this module is the
//! single place that knows how to instantiate them all.

use tm_automata::FgpVariant;

use crate::api::BoxedTm;
use crate::dstm::Dstm;
use crate::fgp::FgpTm;
use crate::global_lock::GlobalLock;
use crate::norec::NOrec;
use crate::ostm::Ostm;
use crate::swiss::SwissTm;
use crate::tiny::TinyStm;
use crate::tl2::Tl2;

/// All non-blocking opaque TMs (every invocation gets an immediate
/// response): the population for the Theorem 1 adversary experiments.
///
/// Note the deliberate exclusion of [`FgpVariant::Literal`], which is not
/// opaque (see `tm_automata::fgp`); [`literal_fgp`] provides it for the
/// experiments that demonstrate the violation.
pub fn nonblocking_catalog(processes: usize, tvars: usize) -> Vec<BoxedTm> {
    vec![
        Box::new(FgpTm::new(processes, tvars, FgpVariant::CpOnly)),
        Box::new(FgpTm::new(processes, tvars, FgpVariant::Strict)),
        Box::new(Tl2::new(processes, tvars)),
        Box::new(TinyStm::new(processes, tvars)),
        Box::new(SwissTm::new(processes, tvars)),
        Box::new(NOrec::new(processes, tvars)),
        Box::new(Ostm::new(processes, tvars)),
        Box::new(Dstm::new(processes, tvars)),
    ]
}

/// Every stepped TM, including the blocking global-lock TM.
pub fn full_catalog(processes: usize, tvars: usize) -> Vec<BoxedTm> {
    let mut tms = nonblocking_catalog(processes, tvars);
    tms.push(Box::new(GlobalLock::new(processes, tvars)));
    tms
}

/// The literal (buggy, non-opaque) reading of the paper's `Fgp` formal
/// rules, kept out of [`nonblocking_catalog`] deliberately.
pub fn literal_fgp(processes: usize, tvars: usize) -> BoxedTm {
    Box::new(FgpTm::new(processes, tvars, FgpVariant::Literal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SteppedTm;

    #[test]
    fn catalog_names_are_unique() {
        let tms = full_catalog(2, 1);
        let mut names: Vec<&str> = tms.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert_eq!(before, 9);
    }

    #[test]
    fn catalog_respects_configuration() {
        for tm in full_catalog(3, 2) {
            assert_eq!(tm.process_count(), 3, "{}", tm.name());
            assert_eq!(tm.tvar_count(), 2, "{}", tm.name());
        }
    }

    #[test]
    fn literal_fgp_is_separate() {
        assert_eq!(literal_fgp(2, 1).name(), "fgp-literal");
        assert!(nonblocking_catalog(2, 1)
            .iter()
            .all(|t| t.name() != "fgp-literal"));
    }
}
