//! The blocking global-lock TM behind the [`SteppedTm`] interface.
//!
//! Wraps [`tm_automata::GlobalLockTm`]. Unlike every other TM in this
//! crate, invocations by non-lock-holders return [`Outcome::Pending`]; the
//! response arrives from a later [`SteppedTm::poll`] once the holder
//! commits. A holder that is never scheduled again (a crash) therefore
//! starves all other processes — the paper's motivating failure of
//! lock-based local progress (§1.1).

use tm_automata::{GlobalLockTm, Runner, TmAutomaton};
use tm_core::{Invocation, ProcessId, Response, TVarId, Value};

use crate::api::{BoxedTm, Outcome, StepFootprint, SteppedTm};

/// Stepped adapter around the global-lock TM automaton.
///
/// # Examples
///
/// ```
/// use tm_core::{Invocation, ProcessId, Response, TVarId};
/// use tm_stm::{GlobalLock, Outcome, SteppedTm};
///
/// let (p1, p2, x) = (ProcessId(0), ProcessId(1), TVarId(0));
/// let mut tm = GlobalLock::new(2, 1);
/// assert_eq!(tm.invoke(p1, Invocation::Read(x)), Outcome::Response(Response::Value(0)));
/// assert_eq!(tm.invoke(p2, Invocation::Read(x)), Outcome::Pending); // blocked
/// tm.invoke(p1, Invocation::TryCommit); // releases the lock
/// assert_eq!(tm.poll(p2), Some(Response::Value(0)));
/// ```
#[derive(Debug, Clone)]
pub struct GlobalLock {
    runner: Runner<GlobalLockTm>,
}

impl GlobalLock {
    /// Creates a stepped global-lock TM.
    ///
    /// # Panics
    ///
    /// Panics if `processes` or `tvars` is zero.
    pub fn new(processes: usize, tvars: usize) -> Self {
        // The adapter is driven by harnesses that record histories
        // themselves (`Recorded`, the model checker), so the runner's own
        // log is dead weight — and would make every fork and refork
        // O(history).
        let mut runner = Runner::new(GlobalLockTm::new(processes, tvars));
        runner.disable_recording();
        GlobalLock { runner }
    }

    /// The committed value of a t-variable (exact between transactions; an
    /// in-flight lock holder's writes are already applied, as the TM never
    /// aborts).
    pub fn committed_value(&self, x: TVarId) -> Value {
        self.runner.state().vals[x.index()]
    }

    /// The current lock owner, if any.
    pub fn owner(&self) -> Option<ProcessId> {
        self.runner.state().owner.map(ProcessId)
    }
}

impl SteppedTm for GlobalLock {
    fn name(&self) -> &'static str {
        "global-lock"
    }

    fn process_count(&self) -> usize {
        self.runner.automaton().process_count()
    }

    fn tvar_count(&self) -> usize {
        self.runner.automaton().tvar_count()
    }

    fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Outcome {
        self.runner
            .invoke(process, invocation)
            .expect("driver must respect the sequential-process contract");
        match self.runner.deliver(process) {
            Some(response) => Outcome::Response(response),
            None => Outcome::Pending,
        }
    }

    fn poll(&mut self, process: ProcessId) -> Option<Response> {
        self.runner.deliver(process)
    }

    fn has_pending(&self, process: ProcessId) -> bool {
        self.runner.state().pending[process.index()].is_some()
    }

    fn fork(&self) -> BoxedTm {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn refork_from(&mut self, source: &dyn SteppedTm) -> bool {
        let Some(source) = source.as_any().and_then(|a| a.downcast_ref::<GlobalLock>()) else {
            return false;
        };
        if self.process_count() != source.process_count()
            || self.tvar_count() != source.tvar_count()
        {
            return false;
        }
        self.runner.copy_from(&source.runner);
        true
    }

    fn step_footprint(&self, process: ProcessId, invocation: Invocation) -> StepFootprint {
        // Explicitly the conservative footprint (the trait default, made
        // audited): every step of the blocking TM observes or mutates
        // the one global lock — acquisition on first operation, queueing
        // while held, release at commit — so no two steps by different
        // processes commute and partial-order reduction correctly
        // degenerates to full exploration.
        let _ = (process, invocation);
        StepFootprint::global()
    }

    fn state_digest(&self) -> Option<u64> {
        // `(vals, owner, pending)` is already canonical — the lock TM has
        // no clocks. The runner's recorded history is excluded: it is an
        // observation log, not behaviour-relevant state.
        Some(tm_core::digest_of(self.runner.state()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SteppedTmExt;
    use crate::recorder::Recorded;
    use tm_core::Invocation as Inv;
    use tm_safety::is_opaque;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);

    #[test]
    fn lock_holder_proceeds_others_block() {
        let mut tm = GlobalLock::new(2, 1);
        assert_eq!(
            tm.invoke(P1, Inv::Read(X)),
            Outcome::Response(Response::Value(0))
        );
        assert_eq!(tm.owner(), Some(P1));
        assert_eq!(tm.invoke(P2, Inv::Read(X)), Outcome::Pending);
        assert!(tm.has_pending(P2));
        assert_eq!(tm.poll(P2), None);
        tm.invoke(P1, Inv::TryCommit);
        assert_eq!(tm.poll(P2), Some(Response::Value(0)));
        assert!(!tm.has_pending(P2));
    }

    #[test]
    fn never_aborts_and_serializes() {
        let mut tm = Recorded::new(GlobalLock::new(2, 1));
        tm.invoke_blocking(P1, Inv::Write(X, 1));
        tm.invoke_blocking(P1, Inv::TryCommit);
        tm.invoke_blocking(P2, Inv::Read(X));
        tm.invoke_blocking(P2, Inv::Write(X, 2));
        tm.invoke_blocking(P2, Inv::TryCommit);
        assert_eq!(tm.history().abort_count(P1), 0);
        assert_eq!(tm.history().abort_count(P2), 0);
        assert_eq!(tm.inner().committed_value(X), 2);
        assert!(is_opaque(tm.history()));
    }

    #[test]
    fn crash_while_holding_lock_starves_everyone() {
        let mut tm = GlobalLock::new(3, 1);
        tm.invoke(P1, Inv::Write(X, 1)); // p1 acquires, then "crashes"
        assert!(tm.invoke(P2, Inv::Read(X)).is_pending());
        assert!(tm.invoke(ProcessId(2), Inv::Write(X, 9)).is_pending());
        // No matter how often they poll, nothing arrives.
        for _ in 0..50 {
            assert_eq!(tm.poll(P2), None);
            assert_eq!(tm.poll(ProcessId(2)), None);
        }
    }
}
