//! The stepped TM interface.
//!
//! A *stepped* TM is a deterministic state machine driven by an explicit
//! scheduler: at every step the scheduler picks a process, the process
//! issues an invocation, and the TM either responds immediately or — for
//! blocking TMs such as the global-lock TM — withholds the response until
//! a later poll succeeds. Interleaving each invocation/response pair
//! atomically is exactly the paper's asynchronous model: the scheduler
//! (or the adversary of Theorem 1) controls the order of process steps,
//! including never scheduling a process again (a crash) or never letting
//! it invoke `tryC` (a parasitic process).

use tm_core::{Invocation, ProcessId, Response};

/// Outcome of an invocation against a [`SteppedTm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The TM responded immediately.
    Response(Response),
    /// The TM withheld the response (a blocking TM); poll later.
    Pending,
}

impl Outcome {
    /// The response, if one was produced.
    pub fn response(self) -> Option<Response> {
        match self {
            Outcome::Response(r) => Some(r),
            Outcome::Pending => None,
        }
    }

    /// Whether the invocation is still awaiting its response.
    pub fn is_pending(self) -> bool {
        matches!(self, Outcome::Pending)
    }
}

/// A TM implementation driven one step at a time by a scheduler.
///
/// # Contract
///
/// * Processes are sequential: the driver must not call
///   [`SteppedTm::invoke`] for a process whose previous invocation is
///   still pending (implementations may panic).
/// * Every response answers the pending invocation per the alphabet `Σ_k`
///   (reads get values or aborts, writes get `ok` or aborts, `tryC` gets
///   commit or abort).
/// * Implementations are deterministic: the same invocation sequence
///   produces the same responses.
pub trait SteppedTm {
    /// The algorithm's name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Number of processes this instance is configured for.
    fn process_count(&self) -> usize;

    /// Number of t-variables this instance is configured for.
    fn tvar_count(&self) -> usize;

    /// Process `process` invokes `invocation`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `process` already has a pending
    /// invocation or the ids are out of range (driver bugs).
    fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Outcome;

    /// Attempts to deliver the withheld response of `process`. Returns
    /// `None` while the TM still blocks (or if nothing is pending).
    fn poll(&mut self, process: ProcessId) -> Option<Response>;

    /// Whether `process` has an invocation awaiting its response.
    fn has_pending(&self, process: ProcessId) -> bool;

    /// Forks an independent copy of the TM in its current state.
    ///
    /// Branching the state machine is what lets the model checker share
    /// schedule prefixes: a tree node extends its parent by *one* step
    /// instead of replaying the whole schedule against a fresh instance.
    /// The fork must be deterministic and observationally identical to
    /// the original — every stepped TM here is a plain value, so this is
    /// a structural clone behind a boxed trait object.
    fn fork(&self) -> BoxedTm;

    /// The concrete TM as [`std::any::Any`], enabling the state-reuse
    /// downcast behind [`SteppedTm::refork_from`]. Wrappers may return
    /// `None` (the default), falling back to allocating forks.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Re-initializes `self` as a fork of `source`, reusing existing
    /// buffers where possible, and reports success. `false` (the
    /// default) means the types or configurations differ and the caller
    /// must fall back to [`SteppedTm::fork`].
    ///
    /// The model checker recycles TM boxes through this hook, making the
    /// per-tree-edge fork allocation-free for TMs that implement it.
    fn refork_from(&mut self, source: &dyn SteppedTm) -> bool {
        let _ = source;
        false
    }

    /// A canonical 64-bit digest of the TM's current state, or `None` if
    /// the algorithm has not opted into fingerprinting.
    ///
    /// # Canonicalization contract
    ///
    /// Digests feed the model checker's cross-schedule seen sets: two
    /// instances (created by the same factory — digests are never compared
    /// across algorithms or configurations) whose digests are equal are
    /// treated as **observationally equivalent**, i.e. every future
    /// invocation sequence produces the same responses and equal digests
    /// again. An implementation must therefore:
    ///
    /// * **cover** every mutable component that can influence any future
    ///   response or poll outcome (pending invocations, per-transaction
    ///   read/write sets, locks, doom marks, committed values, …) — an
    ///   omission makes the seen set unsound;
    /// * **canonicalize** components whose concrete representation can
    ///   differ between behaviourally equivalent reachable states. The
    ///   recurring case is unbounded monotonic counters compared only
    ///   relatively: a TL2-style version clock must be hashed as the
    ///   *rank pattern* of `{clock, slot versions, transaction rvs}`
    ///   rather than as absolute values (behaviour is invariant under
    ///   order-preserving remapping, and absolute values would keep
    ///   states from ever recurring — defeating both the dedup and the
    ///   lasso search); a NOrec-style sequence number is compared only
    ///   for equality and is hashed as per-transaction staleness bits.
    ///   Extra precision is always *sound* (it only splits equivalence
    ///   classes, never merges them) but costs collapsing power.
    ///
    /// Collisions of the 64-bit digest are possible in principle; the
    /// dedup explorer is differential-tested report-identical against the
    /// exhaustive explorer to keep that risk visible.
    fn state_digest(&self) -> Option<u64> {
        None
    }

    /// Whether two *operation* steps (a read or write invocation
    /// answered immediately, no `tryC`) by **different processes** on
    /// **different t-variables** always commute: executing them in
    /// either order yields the same TM state and the same responses.
    ///
    /// This is the independence contract behind the model checker's
    /// sleep-set pruning; it is strictly opt-in, audited per algorithm:
    ///
    /// * holds when per-operation effects are confined to process-local
    ///   bookkeeping and state indexed by the operation's t-variable,
    ///   and any *global* state read at transaction begin (version
    ///   clocks, sequence numbers) is only ever advanced by `tryC`;
    /// * does **not** hold when an operation mutates global state — the
    ///   blocking global-lock TM acquires the lock on its first
    ///   operation, and SwissTM draws a fresh global begin-timestamp —
    ///   so those keep the conservative default `false`, and pruning
    ///   is disabled for them automatically.
    fn disjoint_var_ops_commute(&self) -> bool {
        false
    }
}

/// Extension helpers for driving a [`SteppedTm`] through whole operations.
pub trait SteppedTmExt: SteppedTm {
    /// Invokes and, if the TM blocks, polls until the response arrives.
    ///
    /// Only meaningful for TMs whose blocking is resolved by *this*
    /// process's progress — for the global-lock TM this spins forever if
    /// another process holds the lock, so drivers that model crashes must
    /// use [`SteppedTm::invoke`]/[`SteppedTm::poll`] directly instead.
    fn invoke_blocking(&mut self, process: ProcessId, invocation: Invocation) -> Response {
        match self.invoke(process, invocation) {
            Outcome::Response(r) => r,
            Outcome::Pending => loop {
                if let Some(r) = self.poll(process) {
                    break r;
                }
            },
        }
    }
}

impl<T: SteppedTm + ?Sized> SteppedTmExt for T {}

/// A boxed stepped TM, the form used by harnesses that iterate over every
/// algorithm. `Send` so the model checker's parallel frontier can move
/// forked instances across worker threads.
pub type BoxedTm = Box<dyn SteppedTm + Send>;

impl SteppedTm for BoxedTm {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn process_count(&self) -> usize {
        (**self).process_count()
    }

    fn tvar_count(&self) -> usize {
        (**self).tvar_count()
    }

    fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Outcome {
        (**self).invoke(process, invocation)
    }

    fn poll(&mut self, process: ProcessId) -> Option<Response> {
        (**self).poll(process)
    }

    fn has_pending(&self, process: ProcessId) -> bool {
        (**self).has_pending(process)
    }

    fn fork(&self) -> BoxedTm {
        (**self).fork()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }

    fn refork_from(&mut self, source: &dyn SteppedTm) -> bool {
        (**self).refork_from(source)
    }

    fn state_digest(&self) -> Option<u64> {
        (**self).state_digest()
    }

    fn disjoint_var_ops_commute(&self) -> bool {
        (**self).disjoint_var_ops_commute()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        assert_eq!(
            Outcome::Response(Response::Ok).response(),
            Some(Response::Ok)
        );
        assert_eq!(Outcome::Pending.response(), None);
        assert!(Outcome::Pending.is_pending());
        assert!(!Outcome::Response(Response::Aborted).is_pending());
    }
}
