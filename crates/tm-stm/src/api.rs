//! The stepped TM interface.
//!
//! A *stepped* TM is a deterministic state machine driven by an explicit
//! scheduler: at every step the scheduler picks a process, the process
//! issues an invocation, and the TM either responds immediately or — for
//! blocking TMs such as the global-lock TM — withholds the response until
//! a later poll succeeds. Interleaving each invocation/response pair
//! atomically is exactly the paper's asynchronous model: the scheduler
//! (or the adversary of Theorem 1) controls the order of process steps,
//! including never scheduling a process again (a crash) or never letting
//! it invoke `tryC` (a parasitic process).

use tm_core::{Invocation, ProcessId, Response};

/// Outcome of an invocation against a [`SteppedTm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The TM responded immediately.
    Response(Response),
    /// The TM withheld the response (a blocking TM); poll later.
    Pending,
}

impl Outcome {
    /// The response, if one was produced.
    pub fn response(self) -> Option<Response> {
        match self {
            Outcome::Response(r) => Some(r),
            Outcome::Pending => None,
        }
    }

    /// Whether the invocation is still awaiting its response.
    pub fn is_pending(self) -> bool {
        matches!(self, Outcome::Pending)
    }
}

/// A TM implementation driven one step at a time by a scheduler.
///
/// # Contract
///
/// * Processes are sequential: the driver must not call
///   [`SteppedTm::invoke`] for a process whose previous invocation is
///   still pending (implementations may panic).
/// * Every response answers the pending invocation per the alphabet `Σ_k`
///   (reads get values or aborts, writes get `ok` or aborts, `tryC` gets
///   commit or abort).
/// * Implementations are deterministic: the same invocation sequence
///   produces the same responses.
pub trait SteppedTm {
    /// The algorithm's name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Number of processes this instance is configured for.
    fn process_count(&self) -> usize;

    /// Number of t-variables this instance is configured for.
    fn tvar_count(&self) -> usize;

    /// Process `process` invokes `invocation`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `process` already has a pending
    /// invocation or the ids are out of range (driver bugs).
    fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Outcome;

    /// Attempts to deliver the withheld response of `process`. Returns
    /// `None` while the TM still blocks (or if nothing is pending).
    fn poll(&mut self, process: ProcessId) -> Option<Response>;

    /// Whether `process` has an invocation awaiting its response.
    fn has_pending(&self, process: ProcessId) -> bool;
}

/// Extension helpers for driving a [`SteppedTm`] through whole operations.
pub trait SteppedTmExt: SteppedTm {
    /// Invokes and, if the TM blocks, polls until the response arrives.
    ///
    /// Only meaningful for TMs whose blocking is resolved by *this*
    /// process's progress — for the global-lock TM this spins forever if
    /// another process holds the lock, so drivers that model crashes must
    /// use [`SteppedTm::invoke`]/[`SteppedTm::poll`] directly instead.
    fn invoke_blocking(&mut self, process: ProcessId, invocation: Invocation) -> Response {
        match self.invoke(process, invocation) {
            Outcome::Response(r) => r,
            Outcome::Pending => loop {
                if let Some(r) = self.poll(process) {
                    break r;
                }
            },
        }
    }
}

impl<T: SteppedTm + ?Sized> SteppedTmExt for T {}

/// A boxed stepped TM, the form used by harnesses that iterate over every
/// algorithm.
pub type BoxedTm = Box<dyn SteppedTm>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        assert_eq!(
            Outcome::Response(Response::Ok).response(),
            Some(Response::Ok)
        );
        assert_eq!(Outcome::Pending.response(), None);
        assert!(Outcome::Pending.is_pending());
        assert!(!Outcome::Response(Response::Aborted).is_pending());
    }
}
