//! The stepped TM interface.
//!
//! A *stepped* TM is a deterministic state machine driven by an explicit
//! scheduler: at every step the scheduler picks a process, the process
//! issues an invocation, and the TM either responds immediately or — for
//! blocking TMs such as the global-lock TM — withholds the response until
//! a later poll succeeds. Interleaving each invocation/response pair
//! atomically is exactly the paper's asynchronous model: the scheduler
//! (or the adversary of Theorem 1) controls the order of process steps,
//! including never scheduling a process again (a crash) or never letting
//! it invoke `tryC` (a parasitic process).

use tm_core::{Invocation, ProcessId, Response, TVarId};
use tm_telemetry::{Counter, Telemetry, Timer};

/// The shared-state footprint of one scheduler step, as declared by a
/// TM's conflict oracle ([`SteppedTm::step_footprint`]) *before* the step
/// executes.
///
/// Two steps by different processes whose footprints do not
/// [`StepFootprint::conflicts`] are **independent**: executing them in
/// either order from any state where both are the processes' next steps
/// yields the same TM state (up to [`SteppedTm::state_digest`]
/// equivalence), the same responses, and — because the begin/end flags
/// pin transaction real-time order — the same safety verdict for every
/// extension. This is the independence relation behind the model
/// checker's source-set dynamic partial-order reduction.
///
/// # Fields and the over-approximation contract
///
/// A footprint must cover every piece of *shared* state (state readable
/// or writable by more than one process) the step may touch, evaluated
/// in the current TM state and stable under reordering of independent
/// steps (a step's shared accesses may depend only on state that
/// conflicting steps mutate — e.g. a transaction's own read/write sets,
/// the variable's lock word — never on state an independent step could
/// change):
///
/// * `var_reads`/`var_writes` — bitmasks of t-variables whose per-variable
///   shared state (committed value, version, lock/ownership word) the
///   step may read resp. mutate. Incremental validation that re-reads the
///   whole read set must include the read set's variables; an abort that
///   rolls back or unlocks the write set must include the write set's
///   variables in `var_writes`.
/// * `global_read`/`global_write` — the step reads resp. mutates global
///   shared state (version clocks, sequence numbers, age counters, the
///   global lock, another process's transaction status). *Commutative*
///   updates to global state (e.g. inserting into a set that only
///   globally-writing steps observe) may be declared as `global_read`:
///   two such updates commute with each other, which is exactly what the
///   conflict relation then encodes.
/// * `ends` — the step may complete a transaction *now* (respond
///   `Committed` or `Aborted`). Deterministic TMs can compute this
///   exactly from the current state.
/// * `begins` — the step is the first event of a new transaction.
///   **Set by the driver** (which owns the client cursor), not by the TM.
///
/// `ends`/`begins` exist because swapping an adjacent transaction-ending
/// step with a transaction-beginning step of another process changes the
/// transactions' real-time order — and with it, potentially, the opacity
/// verdict — even when the TM states commute. Such pairs are therefore
/// declared conflicting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepFootprint {
    /// T-variables whose shared per-variable state the step may read.
    pub var_reads: u64,
    /// T-variables whose shared per-variable state the step may mutate.
    pub var_writes: u64,
    /// Reads global shared state (or performs a commutative update to it).
    pub global_read: bool,
    /// Mutates global shared state non-commutatively.
    pub global_write: bool,
    /// May respond `Committed`/`Aborted` now (driver-visible tx end).
    pub ends: bool,
    /// First event of a new transaction (set by the driver, not the TM).
    pub begins: bool,
}

impl StepFootprint {
    /// The empty footprint: touches no shared state.
    pub fn local() -> Self {
        StepFootprint::default()
    }

    /// The fully conservative footprint: conflicts with every step.
    /// This is the [`SteppedTm::step_footprint`] default — sound for any
    /// TM, and it degrades partial-order reduction to full exploration.
    pub fn global() -> Self {
        StepFootprint {
            var_reads: u64::MAX,
            var_writes: u64::MAX,
            global_read: true,
            global_write: true,
            ends: true,
            begins: false,
        }
    }

    /// Marks `x`'s shared state as read. Variables beyond the 64-bit mask
    /// fall back to the global channel (conservative).
    pub fn add_read(&mut self, x: TVarId) {
        self.add_read_index(x.index());
    }

    /// Marks `x`'s shared state as mutated (same 64-variable fallback).
    pub fn add_write(&mut self, x: TVarId) {
        self.add_write_index(x.index());
    }

    /// [`StepFootprint::add_read`] by raw variable index.
    pub fn add_read_index(&mut self, j: usize) {
        if j < 64 {
            self.var_reads |= 1 << j;
        } else {
            self.global_read = true;
            self.global_write = true;
        }
    }

    /// [`StepFootprint::add_write`] by raw variable index.
    pub fn add_write_index(&mut self, j: usize) {
        if j < 64 {
            self.var_writes |= 1 << j;
        } else {
            self.global_read = true;
            self.global_write = true;
        }
    }

    /// Whether two steps **by different processes** may not commute: the
    /// symmetric dependence relation of the partial-order reduction.
    pub fn conflicts(&self, other: &StepFootprint) -> bool {
        self.var_writes & (other.var_reads | other.var_writes) != 0
            || other.var_writes & self.var_reads != 0
            || (self.global_write && (other.global_read || other.global_write))
            || (other.global_write && self.global_read)
            || (self.ends && other.begins)
            || (other.ends && self.begins)
    }

    /// Unions `other` into `self` (the footprint of "any of these steps").
    pub fn merge(&mut self, other: &StepFootprint) {
        self.var_reads |= other.var_reads;
        self.var_writes |= other.var_writes;
        self.global_read |= other.global_read;
        self.global_write |= other.global_write;
        self.ends |= other.ends;
        self.begins |= other.begins;
    }
}

/// Outcome of an invocation against a [`SteppedTm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The TM responded immediately.
    Response(Response),
    /// The TM withheld the response (a blocking TM); poll later.
    Pending,
}

impl Outcome {
    /// The response, if one was produced.
    pub fn response(self) -> Option<Response> {
        match self {
            Outcome::Response(r) => Some(r),
            Outcome::Pending => None,
        }
    }

    /// Whether the invocation is still awaiting its response.
    pub fn is_pending(self) -> bool {
        matches!(self, Outcome::Pending)
    }
}

/// A TM implementation driven one step at a time by a scheduler.
///
/// # Contract
///
/// * Processes are sequential: the driver must not call
///   [`SteppedTm::invoke`] for a process whose previous invocation is
///   still pending (implementations may panic).
/// * Every response answers the pending invocation per the alphabet `Σ_k`
///   (reads get values or aborts, writes get `ok` or aborts, `tryC` gets
///   commit or abort).
/// * Implementations are deterministic: the same invocation sequence
///   produces the same responses.
pub trait SteppedTm {
    /// The algorithm's name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Number of processes this instance is configured for.
    fn process_count(&self) -> usize;

    /// Number of t-variables this instance is configured for.
    fn tvar_count(&self) -> usize;

    /// Process `process` invokes `invocation`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `process` already has a pending
    /// invocation or the ids are out of range (driver bugs).
    fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Outcome;

    /// Attempts to deliver the withheld response of `process`. Returns
    /// `None` while the TM still blocks (or if nothing is pending).
    fn poll(&mut self, process: ProcessId) -> Option<Response>;

    /// Whether `process` has an invocation awaiting its response.
    fn has_pending(&self, process: ProcessId) -> bool;

    /// Forks an independent copy of the TM in its current state.
    ///
    /// Branching the state machine is what lets the model checker share
    /// schedule prefixes: a tree node extends its parent by *one* step
    /// instead of replaying the whole schedule against a fresh instance.
    /// The fork must be deterministic and observationally identical to
    /// the original — every stepped TM here is a plain value, so this is
    /// a structural clone behind a boxed trait object.
    fn fork(&self) -> BoxedTm;

    /// The concrete TM as [`std::any::Any`], enabling the state-reuse
    /// downcast behind [`SteppedTm::refork_from`]. Wrappers may return
    /// `None` (the default), falling back to allocating forks.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Re-initializes `self` as a fork of `source`, reusing existing
    /// buffers where possible, and reports success. `false` (the
    /// default) means the types or configurations differ and the caller
    /// must fall back to [`SteppedTm::fork`].
    ///
    /// The model checker recycles TM boxes through this hook, making the
    /// per-tree-edge fork allocation-free for TMs that implement it.
    fn refork_from(&mut self, source: &dyn SteppedTm) -> bool {
        let _ = source;
        false
    }

    /// A canonical 64-bit digest of the TM's current state, or `None` if
    /// the algorithm has not opted into fingerprinting.
    ///
    /// # Canonicalization contract
    ///
    /// Digests feed the model checker's cross-schedule seen sets: two
    /// instances (created by the same factory — digests are never compared
    /// across algorithms or configurations) whose digests are equal are
    /// treated as **observationally equivalent**, i.e. every future
    /// invocation sequence produces the same responses and equal digests
    /// again. An implementation must therefore:
    ///
    /// * **cover** every mutable component that can influence any future
    ///   response or poll outcome (pending invocations, per-transaction
    ///   read/write sets, locks, doom marks, committed values, …) — an
    ///   omission makes the seen set unsound;
    /// * **canonicalize** components whose concrete representation can
    ///   differ between behaviourally equivalent reachable states. The
    ///   recurring case is unbounded monotonic counters compared only
    ///   relatively: a TL2-style version clock must be hashed as the
    ///   *rank pattern* of `{clock, slot versions, transaction rvs}`
    ///   rather than as absolute values (behaviour is invariant under
    ///   order-preserving remapping, and absolute values would keep
    ///   states from ever recurring — defeating both the dedup and the
    ///   lasso search); a NOrec-style sequence number is compared only
    ///   for equality and is hashed as per-transaction staleness bits.
    ///   Extra precision is always *sound* (it only splits equivalence
    ///   classes, never merges them) but costs collapsing power.
    ///
    /// Collisions of the 64-bit digest are possible in principle; the
    /// dedup explorer is differential-tested report-identical against the
    /// exhaustive explorer to keep that risk visible.
    fn state_digest(&self) -> Option<u64> {
        None
    }

    /// Whether two *operation* steps (a read or write invocation
    /// answered immediately, no `tryC`) by **different processes** on
    /// **different t-variables** always commute: executing them in
    /// either order yields the same TM state and the same responses.
    ///
    /// This is the independence contract behind the model checker's
    /// sleep-set pruning; it is strictly opt-in, audited per algorithm:
    ///
    /// * holds when per-operation effects are confined to process-local
    ///   bookkeeping and state indexed by the operation's t-variable,
    ///   and any *global* state read at transaction begin (version
    ///   clocks, sequence numbers) is only ever advanced by `tryC`;
    /// * does **not** hold when an operation mutates global state — the
    ///   blocking global-lock TM acquires the lock on its first
    ///   operation, and SwissTM draws a fresh global begin-timestamp —
    ///   so those keep the conservative default `false`, and pruning
    ///   is disabled for them automatically.
    fn disjoint_var_ops_commute(&self) -> bool {
        false
    }

    /// The conflict oracle: the shared-state footprint of the step that
    /// would execute `invocation` for `process` **from the current
    /// state** (see [`StepFootprint`] for the contract). The model
    /// checker's partial-order reduction treats two next-steps by
    /// different processes as independent exactly when their footprints
    /// do not [`StepFootprint::conflicts`].
    ///
    /// The default is [`StepFootprint::global`] — sound for every TM,
    /// conflicting with everything, so reduction silently degrades to
    /// full exploration. Catalog TMs refine it from their read/write/lock
    /// footprints; each refinement is an audited per-algorithm
    /// commutativity claim, differential-tested against unreduced
    /// exploration.
    fn step_footprint(&self, process: ProcessId, invocation: Invocation) -> StepFootprint {
        let _ = (process, invocation);
        StepFootprint::global()
    }
}

/// A recycling pool of TM boxes for tree/graph search drivers.
///
/// Every model-checking walk branches the TM once per explored edge. A
/// naive driver allocates a fresh box per branch ([`SteppedTm::fork`]);
/// TMs that implement [`SteppedTm::refork_from`] can instead
/// re-initialize a previously used box in place, making the per-edge
/// branch allocation-free. Both the safety explorer and the liveness
/// checker used to carry private copies of this recycling logic; the
/// pool is the shared form.
///
/// The pool probes refork support once at construction
/// ([`TmPool::for_tm`]): TMs without the fast path keep the pool empty
/// (`recycle == false`), so they pay neither the spare-box storage nor a
/// failed dynamic refork attempt per edge.
#[derive(Default)]
pub struct TmPool {
    spare: Vec<BoxedTm>,
    recycle: bool,
    telemetry: Telemetry,
    forks: u64,
    reforks: u64,
}

impl std::fmt::Debug for TmPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TmPool")
            .field("spare", &self.spare.len())
            .field("recycle", &self.recycle)
            .finish()
    }
}

impl Drop for TmPool {
    fn drop(&mut self) {
        // Flush the branch tallies once per pool lifetime so the hot
        // fork path pays plain integer increments, never atomics.
        self.flush_counters();
    }
}

impl TmPool {
    /// A pool for TMs of `tm`'s concrete type: probes
    /// [`SteppedTm::refork_from`] once and, when supported, seeds the
    /// pool with the probe box.
    pub fn for_tm(tm: &BoxedTm) -> Self {
        let mut probe = tm.fork();
        let recycle = probe.refork_from(&**tm);
        let mut pool = TmPool::new(recycle);
        if recycle {
            pool.spare.push(probe);
        }
        pool
    }

    /// An empty pool with a pre-decided recycle capability — for
    /// parallel workers whose driver probed once via [`TmPool::for_tm`]
    /// and fans the answer out instead of re-probing per worker.
    pub fn new(recycle: bool) -> Self {
        TmPool {
            spare: Vec::new(),
            recycle,
            telemetry: Telemetry::off(),
            forks: 0,
            reforks: 0,
        }
    }

    /// An empty pool that never recycles (every branch allocates).
    pub fn disabled() -> Self {
        TmPool::default()
    }

    /// Whether the pooled TM type supports allocation-free reforking.
    pub fn recycles(&self) -> bool {
        self.recycle
    }

    /// Flushes the fork/refork tallies to the attached telemetry handle
    /// now rather than at drop — engines that emit a `counter_snapshot`
    /// while the pool is still alive must call this first, or the
    /// snapshot under-reports [`Counter::TmForks`] /
    /// [`Counter::TmReforks`]. Idempotent: the tallies reset to zero.
    pub fn flush_counters(&mut self) {
        self.telemetry
            .add(Counter::TmForks, std::mem::take(&mut self.forks));
        self.telemetry
            .add(Counter::TmReforks, std::mem::take(&mut self.reforks));
    }

    /// Attaches a telemetry handle: the pool tallies forks/reforks
    /// locally and flushes them ([`Counter::TmForks`] /
    /// [`Counter::TmReforks`]) when dropped; with timing enabled each
    /// branch is recorded into the fork/refork histograms.
    #[must_use]
    pub fn instrument(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// Branches `parent` one step: re-initializes a recycled box via
    /// [`SteppedTm::refork_from`] when one is available, falling back to
    /// an allocating [`SteppedTm::fork`].
    pub fn fork_child(&mut self, parent: &BoxedTm) -> BoxedTm {
        let started = self.telemetry.timer_start();
        if let Some(mut spare) = self.spare.pop() {
            if spare.refork_from(&**parent) {
                self.reforks += 1;
                self.telemetry.timer_stop(Timer::Refork, started);
                return spare;
            }
            // Refork refused (e.g. a capacity mismatch): fall through to
            // the allocating fork; the stale box is dropped.
        }
        self.forks += 1;
        let child = parent.fork();
        self.telemetry.timer_stop(Timer::Fork, started);
        child
    }

    /// Returns a box to the pool for later reuse. A no-op (the box is
    /// dropped) when the TM type does not support reforking.
    pub fn put_back(&mut self, tm: BoxedTm) {
        if self.recycle {
            self.spare.push(tm);
        }
    }
}

/// Extension helpers for driving a [`SteppedTm`] through whole operations.
pub trait SteppedTmExt: SteppedTm {
    /// Invokes and, if the TM blocks, polls until the response arrives.
    ///
    /// Only meaningful for TMs whose blocking is resolved by *this*
    /// process's progress — for the global-lock TM this spins forever if
    /// another process holds the lock, so drivers that model crashes must
    /// use [`SteppedTm::invoke`]/[`SteppedTm::poll`] directly instead.
    fn invoke_blocking(&mut self, process: ProcessId, invocation: Invocation) -> Response {
        match self.invoke(process, invocation) {
            Outcome::Response(r) => r,
            Outcome::Pending => loop {
                if let Some(r) = self.poll(process) {
                    break r;
                }
            },
        }
    }
}

impl<T: SteppedTm + ?Sized> SteppedTmExt for T {}

/// A boxed stepped TM, the form used by harnesses that iterate over every
/// algorithm. `Send` so the model checker's parallel frontier can move
/// forked instances across worker threads.
pub type BoxedTm = Box<dyn SteppedTm + Send>;

impl SteppedTm for BoxedTm {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn process_count(&self) -> usize {
        (**self).process_count()
    }

    fn tvar_count(&self) -> usize {
        (**self).tvar_count()
    }

    fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Outcome {
        (**self).invoke(process, invocation)
    }

    fn poll(&mut self, process: ProcessId) -> Option<Response> {
        (**self).poll(process)
    }

    fn has_pending(&self, process: ProcessId) -> bool {
        (**self).has_pending(process)
    }

    fn fork(&self) -> BoxedTm {
        (**self).fork()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        (**self).as_any()
    }

    fn refork_from(&mut self, source: &dyn SteppedTm) -> bool {
        (**self).refork_from(source)
    }

    fn state_digest(&self) -> Option<u64> {
        (**self).state_digest()
    }

    fn disjoint_var_ops_commute(&self) -> bool {
        (**self).disjoint_var_ops_commute()
    }

    fn step_footprint(&self, process: ProcessId, invocation: Invocation) -> StepFootprint {
        (**self).step_footprint(process, invocation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        assert_eq!(
            Outcome::Response(Response::Ok).response(),
            Some(Response::Ok)
        );
        assert_eq!(Outcome::Pending.response(), None);
        assert!(Outcome::Pending.is_pending());
        assert!(!Outcome::Response(Response::Aborted).is_pending());
    }
}
