//! A priority-shielding TM, probing the paper's §7 future work.
//!
//! `PriorityFgp` is the `Fgp` idea with one twist: a transaction may only
//! commit if **no concurrently active transaction belongs to a process of
//! strictly higher priority** — lower-priority commit attempts abort
//! *themselves* instead of dooming the shielded transaction. In fault-free
//! executions this guarantees the top-priority process commits every
//! transaction it attempts, on *any* schedule (the adversary that starves
//! `p1` on plain `Fgp` bounces off).
//!
//! The price is exactly what the paper's impossibility machinery predicts:
//! the shield is a wait. If the top-priority process crashes or turns
//! parasitic *mid-transaction*, it stays in the concurrent group forever
//! and every lower-priority process aborts forever — so "the
//! highest-priority **correct** process makes progress" fails in
//! fault-prone systems even though the property is not biprogressing and
//! thus outside Theorem 2. The `ext_priority_progress` harness runs both
//! sides of this trade-off.

use std::collections::BTreeMap;

use tm_core::{Invocation, ProcessId, Response, TVarId, Value, INITIAL_VALUE};

use crate::api::{BoxedTm, Outcome, SteppedTm};

#[derive(Debug, Clone)]
enum TxState {
    Idle,
    Active {
        writes: BTreeMap<usize, Value>,
    },
    /// Doomed by a higher-or-equal-priority commit; aborts at next event.
    Doomed,
}

/// Priority-shielding Fgp-style TM. See the module docs.
///
/// # Examples
///
/// ```
/// use tm_core::{Invocation, ProcessId, Response, TVarId};
/// use tm_stm::{Outcome, PriorityFgp, SteppedTm};
///
/// let (p1, p2, x) = (ProcessId(0), ProcessId(1), TVarId(0));
/// // p1 has priority 2, p2 priority 1.
/// let mut tm = PriorityFgp::new(vec![2, 1], 1);
/// tm.invoke(p1, Invocation::Read(x));
/// tm.invoke(p2, Invocation::Write(x, 5));
/// // p2 cannot commit while the higher-priority p1 is active...
/// assert_eq!(tm.invoke(p2, Invocation::TryCommit), Outcome::Response(Response::Aborted));
/// // ...so p1's conflicting commit goes through.
/// assert_eq!(tm.invoke(p1, Invocation::Write(x, 1)), Outcome::Response(Response::Ok));
/// assert_eq!(tm.invoke(p1, Invocation::TryCommit), Outcome::Response(Response::Committed));
/// ```
#[derive(Debug, Clone)]
pub struct PriorityFgp {
    priorities: Vec<u32>,
    committed: Vec<Value>,
    txs: Vec<TxState>,
}

impl PriorityFgp {
    /// Creates the TM with one priority per process (larger = more
    /// important) and `tvars` t-variables.
    ///
    /// # Panics
    ///
    /// Panics if `priorities` is empty or `tvars` is zero.
    pub fn new(priorities: Vec<u32>, tvars: usize) -> Self {
        assert!(!priorities.is_empty(), "need at least one process");
        assert!(tvars > 0, "need at least one t-variable");
        let n = priorities.len();
        PriorityFgp {
            priorities,
            committed: vec![INITIAL_VALUE; tvars],
            txs: vec![TxState::Idle; n],
        }
    }

    /// The committed value of a t-variable.
    pub fn committed_value(&self, x: TVarId) -> Value {
        self.committed[x.index()]
    }

    /// The configured priority of a process.
    pub fn priority_of(&self, p: ProcessId) -> u32 {
        self.priorities[p.index()]
    }

    fn ensure_active(&mut self, k: usize) -> &mut BTreeMap<usize, Value> {
        if matches!(self.txs[k], TxState::Idle) {
            self.txs[k] = TxState::Active {
                writes: BTreeMap::new(),
            };
        }
        match &mut self.txs[k] {
            TxState::Active { writes } => writes,
            _ => unreachable!("caller handles Doomed before ensure_active"),
        }
    }

    /// Whether some *other* active transaction outranks process `k`.
    fn shielded_by_higher(&self, k: usize) -> bool {
        self.txs.iter().enumerate().any(|(k2, tx)| {
            k2 != k
                && matches!(tx, TxState::Active { .. })
                && self.priorities[k2] > self.priorities[k]
        })
    }
}

impl SteppedTm for PriorityFgp {
    fn name(&self) -> &'static str {
        "priority-fgp"
    }

    fn process_count(&self) -> usize {
        self.txs.len()
    }

    fn tvar_count(&self) -> usize {
        self.committed.len()
    }

    fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Outcome {
        let k = process.index();
        assert!(k < self.txs.len(), "process out of range");
        if matches!(self.txs[k], TxState::Doomed) {
            self.txs[k] = TxState::Idle;
            return Outcome::Response(Response::Aborted);
        }
        match invocation {
            Invocation::Read(x) => {
                let j = x.index();
                let writes = self.ensure_active(k);
                let value = writes.get(&j).copied().unwrap_or(self.committed[j]);
                // Reads are consistent: any commit since this transaction
                // began would have doomed it (handled above), so the
                // committed state is unchanged since its first event.
                Outcome::Response(Response::Value(value))
            }
            Invocation::Write(x, v) => {
                let j = x.index();
                self.ensure_active(k).insert(j, v);
                Outcome::Response(Response::Ok)
            }
            Invocation::TryCommit => {
                self.ensure_active(k);
                if self.shielded_by_higher(k) {
                    // The shield: yield to the more important transaction.
                    self.txs[k] = TxState::Idle;
                    return Outcome::Response(Response::Aborted);
                }
                let writes = match std::mem::replace(&mut self.txs[k], TxState::Idle) {
                    TxState::Active { writes } => writes,
                    _ => unreachable!(),
                };
                for (j, v) in writes {
                    self.committed[j] = v;
                }
                for (k2, tx) in self.txs.iter_mut().enumerate() {
                    if k2 != k && matches!(tx, TxState::Active { .. }) {
                        *tx = TxState::Doomed;
                    }
                }
                Outcome::Response(Response::Committed)
            }
        }
    }

    fn poll(&mut self, _process: ProcessId) -> Option<Response> {
        None // aborts instead of blocking
    }

    fn has_pending(&self, _process: ProcessId) -> bool {
        false
    }

    fn fork(&self) -> BoxedTm {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorded;
    use tm_core::Invocation as Inv;
    use tm_safety::is_opaque;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);

    fn resp(tm: &mut impl SteppedTm, p: ProcessId, inv: Inv) -> Response {
        tm.invoke(p, inv).response().expect("never blocks")
    }

    #[test]
    fn shield_protects_the_high_priority_transaction() {
        let mut tm = Recorded::new(PriorityFgp::new(vec![2, 1], 1));
        // The Algorithm 1 opening: p1 reads, p2 tries to commit over it.
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(0));
        assert_eq!(resp(&mut tm, P2, Inv::Read(X)), Response::Value(0));
        resp(&mut tm, P2, Inv::Write(X, 1));
        // p2's commit is refused while p1 is active.
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Aborted);
        // p1 commits its conflicting write — the adversary's round fails.
        resp(&mut tm, P1, Inv::Write(X, 1));
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
        assert!(is_opaque(tm.history()));
    }

    #[test]
    fn low_priority_processes_proceed_between_shielded_transactions() {
        let mut tm = PriorityFgp::new(vec![2, 1], 1);
        // p1 idle: p2 commits freely.
        resp(&mut tm, P2, Inv::Write(X, 5));
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Committed);
        assert_eq!(tm.committed_value(X), 5);
    }

    #[test]
    fn commit_dooms_concurrent_transactions() {
        let mut tm = PriorityFgp::new(vec![2, 1], 1);
        resp(&mut tm, P2, Inv::Read(X));
        resp(&mut tm, P1, Inv::Write(X, 3));
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
        // p2 was concurrent: next event aborts, then it reads fresh state.
        assert_eq!(resp(&mut tm, P2, Inv::Read(X)), Response::Aborted);
        assert_eq!(resp(&mut tm, P2, Inv::Read(X)), Response::Value(3));
    }

    #[test]
    fn equal_priorities_behave_like_fgp() {
        let mut tm = PriorityFgp::new(vec![1, 1], 1);
        resp(&mut tm, P1, Inv::Read(X));
        resp(&mut tm, P2, Inv::Read(X));
        resp(&mut tm, P2, Inv::Write(X, 1));
        // No strictly-higher active transaction: first committer wins.
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Committed);
        assert_eq!(resp(&mut tm, P1, Inv::Write(X, 1)), Response::Aborted);
    }

    #[test]
    fn crashed_top_priority_transaction_starves_everyone_below() {
        // The impossibility side: p1 (priority 2) opens a transaction and
        // "crashes"; p2 aborts at every commit attempt forever.
        let mut tm = PriorityFgp::new(vec![2, 1], 1);
        resp(&mut tm, P1, Inv::Read(X));
        for _ in 0..100 {
            resp(&mut tm, P2, Inv::Write(X, 9));
            assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Aborted);
        }
        assert_eq!(tm.committed_value(X), 0);
    }

    #[test]
    fn random_interleaving_histories_are_opaque() {
        let mut tm = Recorded::new(PriorityFgp::new(vec![3, 1, 2], 2));
        let mut seed = 0xFACEu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..400 {
            let p = ProcessId((rng() % 3) as usize);
            let x = TVarId((rng() % 2) as usize);
            let inv = match rng() % 4 {
                0 | 1 => Inv::Read(x),
                2 => Inv::Write(x, rng() % 4),
                _ => Inv::TryCommit,
            };
            tm.invoke(p, inv);
        }
        let mut checker = tm_safety::IncrementalChecker::new(tm_safety::Mode::Opacity);
        checker
            .push_all(tm.history().iter().copied())
            .expect("every PriorityFgp prefix must be opaque");
    }
}
