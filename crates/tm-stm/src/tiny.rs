//! A TinySTM-style TM (Felber, Riegel, Fetzer; PPoPP 2008) in stepped form:
//! encounter-time locking with write-through updates and an undo log.
//!
//! Unlike TL2, writes acquire a per-t-variable lock **at encounter time**
//! and mutate the store in place, undoing on abort. Because locks persist
//! across steps, a suspended (crashed) writer leaves t-variables locked —
//! which is exactly why the paper classifies encounter-time lock-based TMs
//! (TinySTM, SwissTM) as ensuring solo progress only in systems that are
//! both crash-free and parasitic-free (§3.2.3). The contention policy is
//! *timid*: a transaction that runs into a lock aborts itself.

use tm_core::{Invocation, ProcessId, Response, TVarId, Value, INITIAL_VALUE};

use crate::api::{BoxedTm, Outcome, StepFootprint, SteppedTm};

#[derive(Debug, Clone)]
struct VarSlot {
    value: Value,
    version: u64,
    owner: Option<usize>,
}

#[derive(Debug, Clone)]
struct ActiveTx {
    rv: u64,
    reads: Vec<usize>,
    /// `(var, previous value)` in acquisition order; replayed backwards on
    /// abort.
    undo: Vec<(usize, Value)>,
}

#[derive(Debug, Clone)]
enum TxState {
    Idle,
    Active(ActiveTx),
}

/// TinySTM-style stepped TM (encounter-time locking, write-through).
///
/// # Examples
///
/// ```
/// use tm_core::{Invocation, ProcessId, Response, TVarId};
/// use tm_stm::{Outcome, SteppedTm, TinyStm};
///
/// let (p1, p2, x) = (ProcessId(0), ProcessId(1), TVarId(0));
/// let mut tm = TinyStm::new(2, 1);
/// // p1 writes x in place (lock held until commit)...
/// assert_eq!(tm.invoke(p1, Invocation::Write(x, 5)), Outcome::Response(Response::Ok));
/// // ...so p2's access to x aborts (timid contention management).
/// assert_eq!(tm.invoke(p2, Invocation::Read(x)), Outcome::Response(Response::Aborted));
/// ```
#[derive(Debug, Clone)]
pub struct TinyStm {
    clock: u64,
    vars: Vec<VarSlot>,
    txs: Vec<TxState>,
}

impl TinyStm {
    /// Creates a TinySTM instance for `processes` processes and `tvars`
    /// t-variables.
    ///
    /// # Panics
    ///
    /// Panics if `processes` or `tvars` is zero.
    pub fn new(processes: usize, tvars: usize) -> Self {
        assert!(processes > 0, "need at least one process");
        assert!(tvars > 0, "need at least one t-variable");
        TinyStm {
            clock: 0,
            vars: vec![
                VarSlot {
                    value: INITIAL_VALUE,
                    version: 0,
                    owner: None,
                };
                tvars
            ],
            txs: vec![TxState::Idle; processes],
        }
    }

    /// The committed value of a t-variable: the in-place value unless an
    /// active writer holds the lock, in which case the undo log holds the
    /// committed value.
    pub fn committed_value(&self, x: TVarId) -> Value {
        let j = x.index();
        let slot = &self.vars[j];
        let Some(owner) = slot.owner else {
            return slot.value;
        };
        if let TxState::Active(tx) = &self.txs[owner] {
            // First undo entry for j is the pre-transaction value.
            if let Some(&(_, old)) = tx.undo.iter().find(|&&(var, _)| var == j) {
                return old;
            }
        }
        slot.value
    }

    fn tx_mut(&mut self, k: usize) -> &mut ActiveTx {
        if matches!(self.txs[k], TxState::Idle) {
            self.txs[k] = TxState::Active(ActiveTx {
                rv: self.clock,
                reads: Vec::new(),
                undo: Vec::new(),
            });
        }
        match &mut self.txs[k] {
            TxState::Active(tx) => tx,
            TxState::Idle => unreachable!(),
        }
    }

    fn abort(&mut self, k: usize) -> Outcome {
        if let TxState::Active(tx) = std::mem::replace(&mut self.txs[k], TxState::Idle) {
            for &(j, old) in tx.undo.iter().rev() {
                self.vars[j].value = old;
            }
            for slot in &mut self.vars {
                if slot.owner == Some(k) {
                    slot.owner = None;
                }
            }
        }
        Outcome::Response(Response::Aborted)
    }
}

impl SteppedTm for TinyStm {
    fn name(&self) -> &'static str {
        "tinystm"
    }

    fn process_count(&self) -> usize {
        self.txs.len()
    }

    fn tvar_count(&self) -> usize {
        self.vars.len()
    }

    fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Outcome {
        let k = process.index();
        assert!(k < self.txs.len(), "process out of range");
        match invocation {
            Invocation::Read(x) => {
                let j = x.index();
                self.tx_mut(k);
                let slot = &self.vars[j];
                match slot.owner {
                    Some(owner) if owner == k => {
                        // Own in-place write.
                        Outcome::Response(Response::Value(slot.value))
                    }
                    Some(_) => self.abort(k), // timid: locked by another
                    None => {
                        let (value, version) = (slot.value, slot.version);
                        let tx = self.tx_mut(k);
                        if version > tx.rv {
                            return self.abort(k);
                        }
                        tx.reads.push(j);
                        Outcome::Response(Response::Value(value))
                    }
                }
            }
            Invocation::Write(x, v) => {
                let j = x.index();
                self.tx_mut(k);
                match self.vars[j].owner {
                    Some(owner) if owner != k => self.abort(k),
                    Some(_) => {
                        self.vars[j].value = v;
                        Outcome::Response(Response::Ok)
                    }
                    None => {
                        let old = self.vars[j].value;
                        self.vars[j].owner = Some(k);
                        self.vars[j].value = v;
                        self.tx_mut(k).undo.push((j, old));
                        Outcome::Response(Response::Ok)
                    }
                }
            }
            Invocation::TryCommit => {
                let tx = self.tx_mut(k).clone();
                let valid = tx.reads.iter().all(|&j| {
                    let slot = &self.vars[j];
                    slot.version <= tx.rv && (slot.owner.is_none() || slot.owner == Some(k))
                });
                if !valid {
                    return self.abort(k);
                }
                let wrote = self.vars.iter().any(|s| s.owner == Some(k));
                if wrote {
                    self.clock += 1;
                    let wv = self.clock;
                    for slot in &mut self.vars {
                        if slot.owner == Some(k) {
                            slot.version = wv;
                            slot.owner = None;
                        }
                    }
                }
                self.txs[k] = TxState::Idle;
                Outcome::Response(Response::Committed)
            }
        }
    }

    fn poll(&mut self, _process: ProcessId) -> Option<Response> {
        None // aborts instead of blocking
    }

    fn has_pending(&self, _process: ProcessId) -> bool {
        false
    }

    fn fork(&self) -> BoxedTm {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn refork_from(&mut self, source: &dyn SteppedTm) -> bool {
        let Some(source) = source.as_any().and_then(|a| a.downcast_ref::<TinyStm>()) else {
            return false;
        };
        if self.txs.len() != source.txs.len() || self.vars.len() != source.vars.len() {
            return false;
        }
        self.clock = source.clock;
        self.vars.clone_from(&source.vars);
        for (dst, src) in self.txs.iter_mut().zip(&source.txs) {
            match (dst, src) {
                // Same-variant case reuses the read vector's and undo
                // log's existing buffers instead of reallocating.
                (TxState::Active(dst), TxState::Active(src)) => {
                    dst.rv = src.rv;
                    dst.reads.clone_from(&src.reads);
                    dst.undo.clone_from(&src.undo);
                }
                (dst, src) => *dst = src.clone(),
            }
        }
        true
    }

    fn state_digest(&self) -> Option<u64> {
        use std::hash::Hash;
        // Like TL2, TinySTM compares its version clock only relatively
        // (`version > rv`; commit draws `clock + 1`, a fresh maximum), so
        // the canonical digest hashes timestamp *ranks* rather than
        // absolute values (see [`crate::fingerprint::Ranks`]).
        let mut stamps = Vec::with_capacity(self.vars.len() + self.txs.len() + 1);
        stamps.push(self.clock);
        stamps.extend(self.vars.iter().map(|s| s.version));
        for tx in &self.txs {
            if let TxState::Active(tx) = tx {
                stamps.push(tx.rv);
            }
        }
        let ranks = crate::fingerprint::Ranks::new(stamps);
        let rank = |t: u64| ranks.rank(t);
        let mut h = tm_core::StableHasher::new();
        rank(self.clock).hash(&mut h);
        for slot in &self.vars {
            // Write-through: the in-place value is exact state whether or
            // not the slot is locked (the undo log holds the rollback).
            (slot.value, rank(slot.version), slot.owner).hash(&mut h);
        }
        for tx in &self.txs {
            match tx {
                TxState::Idle => 0u8.hash(&mut h),
                TxState::Active(tx) => {
                    1u8.hash(&mut h);
                    rank(tx.rv).hash(&mut h);
                    tx.reads.hash(&mut h);
                    tx.undo.hash(&mut h);
                }
            }
        }
        Some(std::hash::Hasher::finish(&h))
    }

    // NOTE: TinySTM must NOT opt into `disjoint_var_ops_commute`:
    // although encounter-time locks are per-variable, an abort rolls
    // back the transaction's *entire* undo log — releasing locks and
    // restoring values on every variable it wrote. Two steps on
    // disjoint variables can therefore decide *which* transaction
    // aborts (and which locks get released) depending on order, so the
    // conservative default `false` stands and sleep-set pruning stays
    // disabled for this TM. The DPOR conflict oracle below *can* express
    // the rollback precisely — a possibly-aborting step declares its
    // whole undo log's variables written — so partial-order reduction
    // works where the coarse per-variable contract could not.

    fn step_footprint(&self, process: ProcessId, invocation: Invocation) -> StepFootprint {
        // Audited conflict oracle. Shared state: per-variable slots
        // `(value, version, owner)` — write-through, so values *and*
        // encounter-time locks live in the slots — plus the global
        // clock. A step that may abort rolls back and unlocks the
        // transaction's whole undo log, so it writes every undone
        // variable.
        let k = process.index();
        let tx = match &self.txs[k] {
            TxState::Active(tx) => Some(tx),
            TxState::Idle => None,
        };
        let mut fp = StepFootprint::local();
        fp.global_read = tx.is_none(); // begin samples the clock
        let undo_writes = |fp: &mut StepFootprint| {
            if let Some(tx) = tx {
                for &(j, _) in &tx.undo {
                    fp.add_write_index(j);
                }
            }
        };
        match invocation {
            Invocation::Read(x) => {
                let j = x.index();
                fp.add_read(x);
                let slot = &self.vars[j];
                fp.ends = match slot.owner {
                    Some(owner) if owner == k => false, // own in-place write
                    Some(_) => true,                    // timid: locked by another
                    None => tx.is_some_and(|tx| slot.version > tx.rv),
                };
                if fp.ends {
                    undo_writes(&mut fp); // abort rolls back the undo log
                }
            }
            Invocation::Write(x, _) => {
                fp.add_write(x); // acquires the lock, writes in place
                fp.ends = self.vars[x.index()].owner.is_some_and(|o| o != k);
                if fp.ends {
                    undo_writes(&mut fp);
                }
            }
            Invocation::TryCommit => {
                fp.ends = true;
                if let Some(tx) = tx {
                    for &j in &tx.reads {
                        fp.add_read_index(j); // validation: version + owner
                    }
                    // Commit publishes versions and unlocks; abort rolls
                    // back — either way every owned slot is written.
                    let mut wrote = false;
                    for (j, slot) in self.vars.iter().enumerate() {
                        if slot.owner == Some(k) {
                            fp.add_write_index(j);
                            wrote = true;
                        }
                    }
                    if wrote {
                        fp.global_write = true; // clock bump on commit
                    }
                }
            }
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorded;
    use tm_core::Invocation as Inv;
    use tm_safety::is_opaque;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    fn resp(tm: &mut impl SteppedTm, p: ProcessId, inv: Inv) -> Response {
        tm.invoke(p, inv).response().expect("tiny never blocks")
    }

    #[test]
    fn write_through_updates_in_place_but_committed_view_lags() {
        let mut tm = TinyStm::new(2, 1);
        resp(&mut tm, P1, Inv::Write(X, 5));
        // In-place: the raw slot holds 5, the committed view reports 0.
        assert_eq!(tm.vars[0].value, 5);
        assert_eq!(tm.committed_value(X), 0);
        // p2 hits the lock and aborts itself.
        assert_eq!(resp(&mut tm, P2, Inv::Read(X)), Response::Aborted);
        // p1 commits: the committed view catches up.
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
        assert_eq!(tm.committed_value(X), 5);
    }

    #[test]
    fn undo_restores_value_when_writer_aborts() {
        let mut tm = TinyStm::new(2, 2);
        // p1 reads y (rv = 0), then writes x in place.
        resp(&mut tm, P1, Inv::Read(Y));
        resp(&mut tm, P1, Inv::Write(X, 9));
        assert_eq!(tm.vars[0].value, 9);
        // p2 commits y, bumping its version beyond p1's rv.
        resp(&mut tm, P2, Inv::Write(Y, 1));
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Committed);
        // p1's commit validation fails; undo restores x.
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Aborted);
        assert_eq!(tm.vars[0].value, 0);
        assert_eq!(tm.vars[0].owner, None);
    }

    #[test]
    fn lock_conflict_aborts_self() {
        let mut tm = TinyStm::new(2, 1);
        resp(&mut tm, P1, Inv::Write(X, 1));
        assert_eq!(resp(&mut tm, P2, Inv::Write(X, 2)), Response::Aborted);
        assert_eq!(resp(&mut tm, P2, Inv::Read(X)), Response::Aborted);
        // p1 unaffected.
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
    }

    #[test]
    fn own_reads_see_own_writes() {
        let mut tm = TinyStm::new(1, 1);
        resp(&mut tm, P1, Inv::Write(X, 3));
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(3));
        resp(&mut tm, P1, Inv::TryCommit);
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(3));
    }

    #[test]
    fn algorithm_1_pattern_starves_reader() {
        let mut tm = Recorded::new(TinyStm::new(2, 1));
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(0));
        assert_eq!(resp(&mut tm, P2, Inv::Read(X)), Response::Value(0));
        resp(&mut tm, P2, Inv::Write(X, 1));
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Committed);
        // p1's write now conflicts only at commit time (lock is free);
        // commit-time validation kills it.
        assert_eq!(resp(&mut tm, P1, Inv::Write(X, 1)), Response::Ok);
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Aborted);
        assert!(is_opaque(tm.history()));
    }

    #[test]
    fn crashed_writer_blocks_others_forever() {
        // The §3.2.3 claim: encounter-time locking loses solo progress
        // under crashes — p1 "crashes" while holding the lock, p2 aborts
        // forever (it never blocks, but can never succeed either).
        let mut tm = TinyStm::new(2, 1);
        resp(&mut tm, P1, Inv::Write(X, 1));
        for _ in 0..100 {
            assert_eq!(resp(&mut tm, P2, Inv::Read(X)), Response::Aborted);
        }
    }

    #[test]
    fn random_interleaving_histories_are_opaque() {
        let mut tm = Recorded::new(TinyStm::new(3, 2));
        let mut seed = 7u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..400 {
            let p = ProcessId((rng() % 3) as usize);
            let x = TVarId((rng() % 2) as usize);
            let inv = match rng() % 4 {
                0 | 1 => Inv::Read(x),
                2 => Inv::Write(x, rng() % 4),
                _ => Inv::TryCommit,
            };
            tm.invoke(p, inv);
        }
        let mut checker = tm_safety::IncrementalChecker::new(tm_safety::Mode::Opacity);
        checker
            .push_all(tm.history().iter().copied())
            .expect("every TinySTM prefix must be opaque");
    }
}
