//! A DSTM-style obstruction-free TM (Herlihy, Luchangco, Moir, Scherer;
//! PODC 2003) in stepped form, with an **aggressive** contention manager.
//!
//! The paper (§3.2.3) credits obstruction-free TMs with solo progress in
//! parasitic-free systems. DSTM's signature behaviours, preserved here:
//!
//! * writers acquire per-t-variable *ownership records* at encounter time,
//!   holding `(old value, new value)`; the committed (logical) value stays
//!   the old one until commit;
//! * readers read the committed value even of an owned t-variable;
//! * on a write-write conflict the aggressive contention manager **aborts
//!   the victim** (the current owner) rather than waiting — obstruction
//!   freedom: a transaction running alone always commits, but two
//!   contending writers can doom each other forever (livelock), which the
//!   ABL2 experiment demonstrates;
//! * a doomed transaction learns of its fate at its next event: the
//!   response is `A_k`.

use tm_core::{Invocation, ProcessId, Response, TVarId, Value, INITIAL_VALUE};

use crate::api::{BoxedTm, Outcome, StepFootprint, SteppedTm};

#[derive(Debug, Clone)]
struct VarSlot {
    committed: Value,
    owner: Option<usize>,
    new_value: Value,
}

#[derive(Debug, Clone)]
struct ActiveTx {
    /// `(var, committed value at read time)` — value-validated.
    reads: Vec<(usize, Value)>,
}

#[derive(Debug, Clone)]
enum TxState {
    Idle,
    Active(ActiveTx),
    /// Aborted by another transaction's contention manager; the process
    /// learns at its next invocation.
    Doomed,
}

/// DSTM-style stepped TM (visible writers, invisible value-validated
/// readers, aggressive contention management).
///
/// # Examples
///
/// ```
/// use tm_core::{Invocation, ProcessId, Response, TVarId};
/// use tm_stm::{Dstm, Outcome, SteppedTm};
///
/// let (p1, p2, x) = (ProcessId(0), ProcessId(1), TVarId(0));
/// let mut tm = Dstm::new(2, 1);
/// assert_eq!(tm.invoke(p1, Invocation::Write(x, 1)), Outcome::Response(Response::Ok));
/// // p2's write steals ownership, dooming p1.
/// assert_eq!(tm.invoke(p2, Invocation::Write(x, 2)), Outcome::Response(Response::Ok));
/// assert_eq!(tm.invoke(p1, Invocation::TryCommit), Outcome::Response(Response::Aborted));
/// assert_eq!(tm.invoke(p2, Invocation::TryCommit), Outcome::Response(Response::Committed));
/// ```
#[derive(Debug, Clone)]
pub struct Dstm {
    vars: Vec<VarSlot>,
    txs: Vec<TxState>,
}

impl Dstm {
    /// Creates a DSTM instance for `processes` processes and `tvars`
    /// t-variables.
    ///
    /// # Panics
    ///
    /// Panics if `processes` or `tvars` is zero.
    pub fn new(processes: usize, tvars: usize) -> Self {
        assert!(processes > 0, "need at least one process");
        assert!(tvars > 0, "need at least one t-variable");
        Dstm {
            vars: vec![
                VarSlot {
                    committed: INITIAL_VALUE,
                    owner: None,
                    new_value: INITIAL_VALUE,
                };
                tvars
            ],
            txs: vec![TxState::Idle; processes],
        }
    }

    /// The committed (logical) value of a t-variable.
    pub fn committed_value(&self, x: TVarId) -> Value {
        self.vars[x.index()].committed
    }

    /// Dooms the transaction of process `victim`: releases its ownerships
    /// (the committed values stay) and marks it for abort at its next
    /// event.
    fn doom(&mut self, victim: usize) {
        for slot in &mut self.vars {
            if slot.owner == Some(victim) {
                slot.owner = None;
            }
        }
        self.txs[victim] = TxState::Doomed;
    }

    fn tx_mut(&mut self, k: usize) -> &mut ActiveTx {
        if matches!(self.txs[k], TxState::Idle) {
            self.txs[k] = TxState::Active(ActiveTx { reads: Vec::new() });
        }
        match &mut self.txs[k] {
            TxState::Active(tx) => tx,
            _ => unreachable!("caller handles Doomed before tx_mut"),
        }
    }

    fn reads_valid(vars: &[VarSlot], tx: &ActiveTx) -> bool {
        tx.reads.iter().all(|&(j, v)| vars[j].committed == v)
    }

    fn abort_self(&mut self, k: usize) -> Outcome {
        for slot in &mut self.vars {
            if slot.owner == Some(k) {
                slot.owner = None;
            }
        }
        self.txs[k] = TxState::Idle;
        Outcome::Response(Response::Aborted)
    }
}

impl SteppedTm for Dstm {
    fn name(&self) -> &'static str {
        "dstm"
    }

    fn process_count(&self) -> usize {
        self.txs.len()
    }

    fn tvar_count(&self) -> usize {
        self.vars.len()
    }

    fn invoke(&mut self, process: ProcessId, invocation: Invocation) -> Outcome {
        let k = process.index();
        assert!(k < self.txs.len(), "process out of range");
        if matches!(self.txs[k], TxState::Doomed) {
            self.txs[k] = TxState::Idle;
            return Outcome::Response(Response::Aborted);
        }
        match invocation {
            Invocation::Read(x) => {
                let j = x.index();
                self.tx_mut(k);
                let value = {
                    let slot = &self.vars[j];
                    if slot.owner == Some(k) {
                        // Own speculative write.
                        return Outcome::Response(Response::Value(slot.new_value));
                    }
                    slot.committed
                };
                let tx_snapshot = self.tx_mut(k).clone();
                if !Self::reads_valid(&self.vars, &tx_snapshot) {
                    return self.abort_self(k);
                }
                self.tx_mut(k).reads.push((j, value));
                Outcome::Response(Response::Value(value))
            }
            Invocation::Write(x, v) => {
                let j = x.index();
                self.tx_mut(k);
                match self.vars[j].owner {
                    Some(owner) if owner != k => {
                        // Aggressive contention management: doom the owner.
                        self.doom(owner);
                        self.vars[j].owner = Some(k);
                        self.vars[j].new_value = v;
                    }
                    _ => {
                        self.vars[j].owner = Some(k);
                        self.vars[j].new_value = v;
                    }
                }
                Outcome::Response(Response::Ok)
            }
            Invocation::TryCommit => {
                let tx = self.tx_mut(k).clone();
                if !Self::reads_valid(&self.vars, &tx) {
                    return self.abort_self(k);
                }
                for slot in &mut self.vars {
                    if slot.owner == Some(k) {
                        slot.committed = slot.new_value;
                        slot.owner = None;
                    }
                }
                self.txs[k] = TxState::Idle;
                Outcome::Response(Response::Committed)
            }
        }
    }

    fn poll(&mut self, _process: ProcessId) -> Option<Response> {
        None // obstruction-free: never withholds responses
    }

    fn has_pending(&self, _process: ProcessId) -> bool {
        false
    }

    fn fork(&self) -> BoxedTm {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn refork_from(&mut self, source: &dyn SteppedTm) -> bool {
        let Some(source) = source.as_any().and_then(|a| a.downcast_ref::<Dstm>()) else {
            return false;
        };
        if self.txs.len() != source.txs.len() || self.vars.len() != source.vars.len() {
            return false;
        }
        self.vars.clone_from(&source.vars);
        for (dst, src) in self.txs.iter_mut().zip(&source.txs) {
            match (dst, src) {
                // Same-variant case reuses the read vector's buffer
                // instead of reallocating.
                (TxState::Active(dst), TxState::Active(src)) => {
                    dst.reads.clone_from(&src.reads);
                }
                (dst, src) => *dst = src.clone(),
            }
        }
        true
    }

    fn step_footprint(&self, process: ProcessId, invocation: Invocation) -> StepFootprint {
        // Audited conflict oracle. Shared state: per-variable ownership
        // records `(committed, owner, new_value)` plus — because the
        // aggressive contention manager dooms the current owner — every
        // process's transaction status. Doom checks make every step a
        // global reader; a stealing write is a global writer.
        let k = process.index();
        if matches!(self.txs[k], TxState::Doomed) {
            let mut fp = StepFootprint::local();
            fp.global_read = true;
            fp.ends = true;
            return fp;
        }
        let tx = match &self.txs[k] {
            TxState::Active(tx) => Some(tx),
            _ => None,
        };
        let mut fp = StepFootprint::local();
        fp.global_read = true; // doom flag, set by other processes' CM
        match invocation {
            Invocation::Read(x) => {
                let j = x.index();
                fp.add_read(x);
                if self.vars[j].owner != Some(k) {
                    if let Some(tx) = tx {
                        for &(j, _) in &tx.reads {
                            fp.add_read_index(j); // value revalidation
                        }
                        fp.ends = !Self::reads_valid(&self.vars, tx);
                    }
                }
            }
            Invocation::Write(x, _) => {
                let j = x.index();
                fp.add_write(x); // acquires (or steals) the ownership record
                if self.vars[j].owner.is_some_and(|o| o != k) {
                    // Aggressive CM: dooms the owner, releasing its
                    // ownerships across variables.
                    fp.global_write = true;
                }
            }
            Invocation::TryCommit => {
                fp.ends = true;
                if let Some(tx) = tx {
                    for &(j, _) in &tx.reads {
                        fp.add_read_index(j); // value validation
                    }
                    // Commit publishes owned slots; abort releases them.
                    for (j, slot) in self.vars.iter().enumerate() {
                        if slot.owner == Some(k) {
                            fp.add_write_index(j);
                        }
                    }
                }
            }
        }
        fp
    }

    fn state_digest(&self) -> Option<u64> {
        use std::hash::Hash;
        // No clocks — the state is naturally recurrent. One
        // canonicalization: an unowned slot's `new_value` is stale
        // residue from a finished owner (doom and abort release the
        // slot without clearing it), so it is hashed only while owned.
        let mut h = tm_core::StableHasher::new();
        for slot in &self.vars {
            (
                slot.committed,
                slot.owner,
                slot.owner.map(|_| slot.new_value),
            )
                .hash(&mut h);
        }
        for tx in &self.txs {
            match tx {
                TxState::Idle => 0u8.hash(&mut h),
                TxState::Doomed => 2u8.hash(&mut h),
                TxState::Active(tx) => {
                    1u8.hash(&mut h);
                    tx.reads.hash(&mut h);
                }
            }
        }
        Some(std::hash::Hasher::finish(&h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorded;
    use tm_core::Invocation as Inv;
    use tm_safety::is_opaque;

    const P1: ProcessId = ProcessId(0);
    const P2: ProcessId = ProcessId(1);
    const X: TVarId = TVarId(0);
    const Y: TVarId = TVarId(1);

    fn resp(tm: &mut impl SteppedTm, p: ProcessId, inv: Inv) -> Response {
        tm.invoke(p, inv).response().expect("dstm never blocks")
    }

    #[test]
    fn readers_see_committed_value_of_owned_var() {
        let mut tm = Dstm::new(2, 1);
        resp(&mut tm, P1, Inv::Write(X, 9));
        // p2 reads the committed value, not p1's speculative one — and is
        // not aborted (readers don't conflict with writers in this model).
        assert_eq!(resp(&mut tm, P2, Inv::Read(X)), Response::Value(0));
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
        assert_eq!(tm.committed_value(X), 9);
    }

    #[test]
    fn aggressive_cm_dooms_current_owner() {
        let mut tm = Recorded::new(Dstm::new(2, 1));
        resp(&mut tm, P1, Inv::Write(X, 1));
        resp(&mut tm, P2, Inv::Write(X, 2)); // steals, dooms p1
        assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Aborted);
        assert_eq!(resp(&mut tm, P2, Inv::TryCommit), Response::Committed);
        assert_eq!(tm.inner().committed_value(X), 2);
        assert!(is_opaque(tm.history()));
    }

    #[test]
    fn livelock_under_contention() {
        // Two writers in the classic obstruction-freedom livelock schedule:
        // each steals ownership (dooming the other) before the other's
        // commit attempt, so nobody ever commits (ABL2).
        let mut tm = Dstm::new(2, 1);
        assert_eq!(resp(&mut tm, P1, Inv::Write(X, 1)), Response::Ok);
        assert_eq!(resp(&mut tm, P2, Inv::Write(X, 2)), Response::Ok); // dooms p1
        let mut commits = 0;
        for _ in 0..100 {
            if resp(&mut tm, P1, Inv::TryCommit) == Response::Committed {
                commits += 1; // doomed: always A
            }
            assert_eq!(resp(&mut tm, P1, Inv::Write(X, 1)), Response::Ok); // dooms p2
            if resp(&mut tm, P2, Inv::TryCommit) == Response::Committed {
                commits += 1; // doomed: always A
            }
            assert_eq!(resp(&mut tm, P2, Inv::Write(X, 2)), Response::Ok); // dooms p1
        }
        assert_eq!(commits, 0);
        assert_eq!(tm.committed_value(X), 0);
    }

    #[test]
    fn solo_transaction_always_commits() {
        let mut tm = Dstm::new(2, 2);
        for round in 0..20u64 {
            assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(round));
            resp(&mut tm, P1, Inv::Write(X, round + 1));
            resp(&mut tm, P1, Inv::Write(Y, round));
            assert_eq!(resp(&mut tm, P1, Inv::TryCommit), Response::Committed);
        }
    }

    #[test]
    fn doomed_transaction_aborts_once_then_recovers() {
        let mut tm = Dstm::new(2, 1);
        resp(&mut tm, P1, Inv::Write(X, 1));
        resp(&mut tm, P2, Inv::Write(X, 2));
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Aborted);
        // Fresh transaction proceeds.
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(0));
    }

    #[test]
    fn dooming_releases_ownership_keeping_committed_value() {
        let mut tm = Dstm::new(3, 2);
        resp(&mut tm, P1, Inv::Write(X, 5));
        resp(&mut tm, P1, Inv::Write(Y, 6));
        // p2 steals x only; p1's ownership of y must also be released.
        resp(&mut tm, P2, Inv::Write(X, 7));
        assert_eq!(tm.vars[1].owner, None);
        assert_eq!(tm.committed_value(X), 0);
        assert_eq!(tm.committed_value(Y), 0);
    }

    #[test]
    fn value_validation_keeps_readers_consistent() {
        let mut tm = Dstm::new(2, 2);
        assert_eq!(resp(&mut tm, P1, Inv::Read(X)), Response::Value(0));
        resp(&mut tm, P2, Inv::Write(X, 1));
        resp(&mut tm, P2, Inv::Write(Y, 1));
        resp(&mut tm, P2, Inv::TryCommit);
        // p1's read of y now triggers validation failure on x.
        assert_eq!(resp(&mut tm, P1, Inv::Read(Y)), Response::Aborted);
    }

    #[test]
    fn random_interleaving_histories_are_opaque() {
        let mut tm = Recorded::new(Dstm::new(3, 2));
        let mut seed = 31337u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..400 {
            let p = ProcessId((rng() % 3) as usize);
            let x = TVarId((rng() % 2) as usize);
            let inv = match rng() % 4 {
                0 | 1 => Inv::Read(x),
                2 => Inv::Write(x, rng() % 4),
                _ => Inv::TryCommit,
            };
            tm.invoke(p, inv);
        }
        let mut checker = tm_safety::IncrementalChecker::new(tm_safety::Mode::Opacity);
        checker
            .push_all(tm.history().iter().copied())
            .expect("every DSTM prefix must be opaque");
    }
}
