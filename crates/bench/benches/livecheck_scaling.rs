//! PERF4 — the liveness subsystem's scaling story.
//!
//! Four measurements, emitted as `BENCH_livecheck.json` at the
//! workspace root so the perf trajectory is tracked across PRs:
//!
//! 1. **Digest dedup** — the safety explorer with the cross-schedule
//!    seen set on vs off. On bounded-domain workloads the schedule tree
//!    collapses to the (small) set of distinct canonical states, turning
//!    exponential depths into near-constant work and unlocking bounds
//!    the plain DFS cannot touch.
//! 2. **Refork across the catalogue** — `refork_from` (hand-written
//!    `clone_from`, allocation-free) vs allocating `fork`, now wired
//!    through **all 8** catalogue TMs plus the blocking global-lock TM.
//! 3. **Livecheck scaling** — the liveness checker's cost as the bound
//!    grows: states/edges/steps stay flat once the canonical graph is
//!    saturated, while the equivalent schedule tree grows as `2^depth` —
//!    with and without the transition-level reduction, whose
//!    states/lassos/starvation verdicts must match byte for byte, and on
//!    the engine-backed parallel path (`LivecheckConfig::parallel`),
//!    whose reports must match the reduced sequential search byte for
//!    byte regardless of thread count.
//! 4. **SCC certification** — the per-process cycle certificates,
//!    sequential vs the embarrassingly parallel rayon fan-out
//!    (`tm_liveness::scc`), on a synthetic labelled graph.
//!
//! Parallel-speedup caveat: this container is single-core, so the
//! `*_parallel_ms` columns cannot demonstrate multi-core wins here —
//! re-measure on 4+ cores (see ROADMAP).
//!
//! Run: `cargo bench -p bench --bench livecheck_scaling`

use bench::{best_secs, BenchRun, Json};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tm_automata::FgpVariant;
use tm_core::TVarId;
use tm_sim::{explore_with, livecheck, ClientScript, ExploreConfig, LivecheckConfig, PlannedOp};
use tm_stm::{BoxedTm, Dstm, FgpTm, GlobalLock, NOrec, Ostm, SteppedTm, SwissTm, TinyStm, Tl2};
use tm_telemetry::{Counter, Telemetry};

const X: TVarId = TVarId(0);

fn fgp() -> BoxedTm {
    Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly))
}

/// Unbounded-domain workload (increments): values grow along a path, so
/// dedup merges only across same-level permutations.
fn increments() -> Vec<ClientScript> {
    vec![ClientScript::increment(X), ClientScript::increment(X)]
}

/// Bounded-domain workload (constant writes): the canonical state space
/// is finite, so dedup collapses the tree completely.
fn bounded() -> Vec<ClientScript> {
    vec![
        ClientScript::new(vec![PlannedOp::Write(X, 1)]),
        ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 2)]),
    ]
}

fn bench_dedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("explorer-dedup/2p");
    group.sample_size(10);
    for depth in [10usize, 12] {
        for (workload, scripts) in [("incr", increments()), ("bounded", bounded())] {
            group.bench_with_input(
                BenchmarkId::new(format!("{workload}-off"), depth),
                &depth,
                |b, &d| b.iter(|| explore_with(fgp, &scripts, &ExploreConfig::new(d).sequential())),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{workload}-on"), depth),
                &depth,
                |b, &d| {
                    b.iter(|| {
                        explore_with(
                            fgp,
                            &scripts,
                            &ExploreConfig::new(d).sequential().with_dedup(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_livecheck(c: &mut Criterion) {
    let mut group = c.benchmark_group("livecheck/2p");
    group.sample_size(10);
    let scripts = bounded();
    for depth in [12usize, 16] {
        group.bench_with_input(BenchmarkId::new("fgp", depth), &depth, |b, &d| {
            b.iter(|| livecheck(fgp, &scripts, &LivecheckConfig::new(d)))
        });
        group.bench_with_input(BenchmarkId::new("global-lock", depth), &depth, |b, &d| {
            b.iter(|| {
                livecheck(
                    || Box::new(GlobalLock::new(2, 1)),
                    &scripts,
                    &LivecheckConfig::new(d),
                )
            })
        });
    }
    group.finish();
}

fn emit_json(_c: &mut Criterion) {
    let run = BenchRun::from_args();
    let (test_mode, runs) = (run.test_mode, run.runs);

    // 1. Dedup on/off across workloads and depths.
    let mut dedup_rows = Vec::new();
    let mut headline_speedup = 0.0;
    let table: &[(&str, usize)] = if test_mode {
        &[("bounded", 8)]
    } else {
        &[
            ("incr", 10),
            ("incr", 12),
            ("bounded", 10),
            ("bounded", 12),
            ("bounded", 14),
        ]
    };
    for &(workload, depth) in table {
        let scripts = if workload == "incr" {
            increments()
        } else {
            bounded()
        };
        let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..runs {
            off = off.min(best_secs(1, || {
                explore_with(fgp, &scripts, &ExploreConfig::new(depth).sequential());
            }));
            on = on.min(best_secs(1, || {
                explore_with(
                    fgp,
                    &scripts,
                    &ExploreConfig::new(depth).sequential().with_dedup(),
                );
            }));
        }
        let sample = explore_with(
            fgp,
            &scripts,
            &ExploreConfig::new(depth).sequential().with_dedup(),
        );
        if workload == "bounded" && depth == 12 {
            headline_speedup = off / on;
        }
        dedup_rows.push(Json::Obj(vec![
            ("workload".into(), Json::str(workload)),
            ("depth".into(), Json::Int(depth as i64)),
            ("schedules".into(), Json::Int(1i64 << depth)),
            ("dedup_hits".into(), Json::Int(sample.dedup_hits as i64)),
            ("dfs_ms".into(), Json::Num(off * 1e3)),
            ("dedup_ms".into(), Json::Num(on * 1e3)),
            ("speedup_dedup_vs_dfs".into(), Json::Num(off / on)),
        ]));
    }

    // Deep bounds only dedup can reach: exponential schedule counts,
    // near-flat wall clock (the state graph saturates).
    let mut deep = Vec::new();
    let deep_depths: &[usize] = if test_mode { &[10] } else { &[16, 20, 24] };
    for &depth in deep_depths {
        let scripts = bounded();
        let on = best_secs(runs.min(3), || {
            let result = explore_with(
                fgp,
                &scripts,
                &ExploreConfig::new(depth).sequential().with_dedup(),
            );
            assert!(result.all_opaque());
        });
        deep.push(Json::Obj(vec![
            ("depth".into(), Json::Int(depth as i64)),
            ("schedules".into(), Json::Int(1i64 << depth)),
            ("dedup_ms".into(), Json::Num(on * 1e3)),
        ]));
    }

    // 2. Refork vs fork across the whole catalogue (all 8 TMs plus the
    // blocking global-lock TM): no explorer path pays an allocating fork
    // anymore.
    let mut refork_rows = Vec::new();
    let factories: Vec<(&str, BoxedTm)> = vec![
        ("fgp", Box::new(FgpTm::new(2, 2, FgpVariant::CpOnly))),
        ("tl2", Box::new(Tl2::new(2, 2))),
        ("norec", Box::new(NOrec::new(2, 2))),
        ("tinystm", Box::new(TinyStm::new(2, 2))),
        ("swisstm", Box::new(SwissTm::new(2, 2))),
        ("ostm", Box::new(Ostm::new(2, 2))),
        ("dstm", Box::new(Dstm::new(2, 2))),
        ("global-lock", Box::new(GlobalLock::new(2, 2))),
    ];
    for (name, mut tm) in factories {
        // Put the TM mid-transaction so the fork copies real state.
        tm.invoke(tm_core::ProcessId(0), tm_core::Invocation::Read(X));
        tm.invoke(tm_core::ProcessId(0), tm_core::Invocation::Write(X, 3));
        let mut spare = tm.fork();
        assert!(spare.refork_from(&*tm), "{name} must support refork");
        let fork_s = best_secs(runs, || {
            criterion::black_box(tm.fork());
        });
        let refork_s = best_secs(runs, || {
            criterion::black_box(spare.refork_from(&*tm));
        });
        // Regression floor: refork exists to beat the allocating fork,
        // and every catalogue TM clears 1.3× comfortably once its state's
        // `clone_from` reuses buffers (the global-lock TM was the
        // laggard at 1.19× until its runner stopped recording history
        // and its state gained a buffer-reusing `clone_from`).
        assert!(
            fork_s / refork_s >= 1.3,
            "{name}: refork regressed to {:.2}x vs fork",
            fork_s / refork_s
        );
        refork_rows.push(Json::Obj(vec![
            ("tm".into(), Json::str(name)),
            ("fork_ns".into(), Json::Num(fork_s * 1e9)),
            ("refork_ns".into(), Json::Num(refork_s * 1e9)),
            (
                "speedup_refork_vs_fork".into(),
                Json::Num(fork_s / refork_s),
            ),
        ]));
    }

    // 3. Livecheck scaling with the exploration bound.
    let mut live_rows = Vec::new();
    let live_table: &[(&str, usize)] = if test_mode {
        &[("fgp", 8)]
    } else {
        &[
            ("fgp", 12),
            ("fgp", 16),
            ("fgp", 20),
            ("tl2", 16),
            ("norec", 16),
            ("global-lock", 16),
        ]
    };
    for &(name, depth) in live_table {
        let factory: Box<dyn Fn() -> BoxedTm> = match name {
            "fgp" => Box::new(fgp),
            "tl2" => Box::new(|| Box::new(Tl2::new(2, 1)) as BoxedTm),
            "norec" => Box::new(|| Box::new(NOrec::new(2, 1)) as BoxedTm),
            _ => Box::new(|| Box::new(GlobalLock::new(2, 1)) as BoxedTm),
        };
        let scripts = bounded();
        let config = LivecheckConfig::new(depth);
        let reduced_config = LivecheckConfig::new(depth).with_reduction();
        let parallel_config = LivecheckConfig::new(depth).with_parallel();
        let secs = best_secs(runs.min(3), || {
            criterion::black_box(livecheck(&*factory, &scripts, &config));
        });
        let reduced_secs = best_secs(runs.min(3), || {
            criterion::black_box(livecheck(&*factory, &scripts, &reduced_config));
        });
        let parallel_secs = best_secs(runs.min(3), || {
            criterion::black_box(livecheck(&*factory, &scripts, &parallel_config));
        });
        let report = livecheck(&*factory, &scripts, &config);
        // The reduced sample run carries counter-mode telemetry so the
        // artifact rows gain the engine's own tallies (memo traffic, TM
        // fork/refork counts) alongside the report fields. When
        // `TM_TELEMETRY` is set (the CI smoke streams to a file the
        // `tm-obs summary --require-verdicts` gate then consumes), the
        // sample streams the full NDJSON run — run_start through
        // verdict — instead of only accumulating counters.
        let reduced_telemetry = {
            let streamed = Telemetry::from_env();
            if streamed.streams() {
                streamed
            } else {
                Telemetry::counters()
            }
        };
        let reduced = livecheck(
            &*factory,
            &scripts,
            &reduced_config.clone().with_telemetry(&reduced_telemetry),
        );
        let reduced_snap = reduced_telemetry.snapshot();
        let parallel = livecheck(&*factory, &scripts, &parallel_config);
        assert_eq!(report.rejected_cycles, 0, "{name}: canonicalization bug");
        // The reduction's contract: identical graph, lassos and
        // verdicts — only TM executions drop. Computed (not assumed) so
        // the emitted field can never mask a divergence.
        let reduce_parity = report.states == reduced.states
            && report.edges == reduced.edges
            && report.lassos.len() == reduced.lassos.len()
            && report.verdicts == reduced.verdicts
            && report.steps == reduced.steps + reduced.replayed_steps;
        assert!(
            reduce_parity,
            "{name}: reduction diverged from the plain search"
        );
        // The parallel search's contract: byte-identical to the reduced
        // sequential search (it shares the execution discipline — every
        // TM transition executed exactly once).
        let parallel_parity = parallel.states == reduced.states
            && parallel.edges == reduced.edges
            && parallel.steps == reduced.steps
            && parallel.replayed_steps == reduced.replayed_steps
            && parallel.dedup_hits == reduced.dedup_hits
            && parallel.cycles_detected == reduced.cycles_detected
            && parallel.lassos.len() == reduced.lassos.len()
            && parallel.verdicts == reduced.verdicts;
        assert!(
            parallel_parity,
            "{name}: parallel search diverged from the reduced sequential search"
        );
        live_rows.push(Json::Obj(vec![
            ("tm".into(), Json::str(name)),
            ("depth".into(), Json::Int(depth as i64)),
            ("schedules".into(), Json::Int(1i64 << depth)),
            ("states".into(), Json::Int(report.states as i64)),
            ("edges".into(), Json::Int(report.edges as i64)),
            ("steps".into(), Json::Int(report.steps as i64)),
            ("steps_reduced".into(), Json::Int(reduced.steps as i64)),
            (
                "replayed_steps".into(),
                Json::Int(reduced.replayed_steps as i64),
            ),
            (
                "memo_hits".into(),
                Json::Int(reduced_snap.get(Counter::MemoHits) as i64),
            ),
            (
                "tm_forks".into(),
                Json::Int(reduced_snap.get(Counter::TmForks) as i64),
            ),
            (
                "tm_reforks".into(),
                Json::Int(reduced_snap.get(Counter::TmReforks) as i64),
            ),
            ("cycles".into(), Json::Int(report.cycles_detected as i64)),
            ("lassos".into(), Json::Int(report.lassos.len() as i64)),
            (
                "starvation_free".into(),
                Json::Bool(report.lasso_starvation_free()),
            ),
            ("reduce_parity".into(), Json::Bool(reduce_parity)),
            ("parallel_parity".into(), Json::Bool(parallel_parity)),
            ("ms".into(), Json::Num(secs * 1e3)),
            ("reduced_ms".into(), Json::Num(reduced_secs * 1e3)),
            (
                "livecheck_parallel_ms".into(),
                Json::Num(parallel_secs * 1e3),
            ),
            (
                "speedup_reduced_vs_plain".into(),
                Json::Num(secs / reduced_secs),
            ),
            (
                "speedup_parallel_vs_plain".into(),
                Json::Num(secs / parallel_secs),
            ),
        ]));
    }

    // 4. SCC certification: the per-process pass is embarrassingly
    // parallel; measure the sequential vs rayon entry points of
    // tm_liveness::scc on a synthetic labelled graph large enough to
    // dwarf the fan-out overhead (determinism asserted: the parallel
    // pass merges in process-id order).
    let scc_rows = {
        use tm_liveness::{certify_cycles, certify_cycles_parallel, CycleEdge};
        let (nodes, processes) = if test_mode { (500, 4) } else { (20_000, 8) };
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let graph: Vec<Vec<CycleEdge>> = (0..nodes)
            .map(|i| {
                (0..processes)
                    .map(|k| {
                        let r = next();
                        CycleEdge {
                            // A ring backbone with pseudo-random chords:
                            // plenty of overlapping SCC structure.
                            target: if r % 8 == 0 {
                                (r % nodes as u64) as u32
                            } else {
                                ((i + 1) % nodes) as u32
                            },
                            process: k as u8,
                            events: if r % 16 == 0 { 0 } else { 2 },
                            committed: r % 3 == 0,
                            aborted: r % 3 == 1,
                            tryc: r % 3 != 2,
                        }
                    })
                    .collect()
            })
            .collect();
        let seq = best_secs(runs.min(3), || {
            criterion::black_box(certify_cycles(&graph, processes));
        });
        let par = best_secs(runs.min(3), || {
            criterion::black_box(certify_cycles_parallel(&graph, processes));
        });
        assert_eq!(
            certify_cycles(&graph, processes),
            certify_cycles_parallel(&graph, processes),
            "parallel SCC certificates diverged"
        );
        vec![Json::Obj(vec![
            ("nodes".into(), Json::Int(nodes as i64)),
            ("edges".into(), Json::Int((nodes * processes) as i64)),
            ("processes".into(), Json::Int(processes as i64)),
            ("scc_seq_ms".into(), Json::Num(seq * 1e3)),
            ("scc_parallel_ms".into(), Json::Num(par * 1e3)),
            ("speedup_scc_parallel_vs_seq".into(), Json::Num(seq / par)),
        ])]
    };

    // Report parity: dedup must not change what the explorer reports.
    let parity = {
        let scripts = increments();
        let depth = if test_mode { 7 } else { 10 };
        let plain = explore_with(fgp, &scripts, &ExploreConfig::new(depth).sequential());
        let deduped = explore_with(
            fgp,
            &scripts,
            &ExploreConfig::new(depth).sequential().with_dedup(),
        );
        plain.report() == deduped.report()
    };

    run.emit(
        "livecheck",
        vec![
            ("dedup_comparison".into(), Json::Arr(dedup_rows)),
            ("dedup_deep_bounds".into(), Json::Arr(deep)),
            ("refork".into(), Json::Arr(refork_rows)),
            ("livecheck".into(), Json::Arr(live_rows)),
            ("scc_certification".into(), Json::Arr(scc_rows)),
            (
                "headline_speedup_dedup_vs_dfs_bounded_depth12".into(),
                Json::Num(headline_speedup),
            ),
            ("report_parity_with_plain_dfs".into(), Json::Bool(parity)),
        ],
    );
    assert!(parity, "dedup changed the exploration report");
}

// `emit_json` runs first so the committed artifact reflects steady-state
// rather than post-throttle timing (see PERF3).
criterion_group!(benches, emit_json, bench_dedup, bench_livecheck);
criterion_main!(benches);
