//! PERF3 — naive enumerator vs prefix-sharing DFS explorer.
//!
//! Measures the model checker across depths and process counts in six
//! configurations — the seed's from-scratch enumerator, the DFS explorer
//! single-threaded, the DFS explorer with its parallel frontier, DFS
//! with sleep-set pruning, DFS with source-set DPOR, and DFS with
//! optimal (wakeup-tree) DPOR — and emits a machine-readable
//! `BENCH_explorer.json` at the workspace root so the perf trajectory is
//! tracked across PRs. Each comparison row records the *executed*
//! schedule counts under sleep sets, source-set DPOR and optimal DPOR:
//! the equivalence-class reduction headline.
//!
//! A note on the `sleep_set_blocks` column: it counts subtrees the
//! *coarse* sleep-set mode prunes, and that mode's per-variable
//! independence relation never fires on the 2-process workload (both
//! clients increment the same variable), so the column is structurally 0
//! on 2-process rows. The fine-grained footprint oracle behind DPOR
//! *does* see independence there (op steps carry empty write masks), so
//! the redundancy the sleep discipline suppresses in that mode is
//! reported separately as `dpor_sleep_blocked_executions` — the
//! executions classic sleep-set DPOR would start and abandon, nonzero on
//! both shapes, and the waste `sleep_blocked_executions` (optimal mode)
//! pins at exactly zero.
//!
//! Run: `cargo bench -p bench --bench explorer_scaling`

use bench::{best_secs, BenchRun, Json};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tm_automata::FgpVariant;
use tm_core::TVarId;
use tm_sim::{explore_schedules_naive, explore_with, ClientScript, ExploreConfig};
use tm_stm::{BoxedTm, FgpTm};
use tm_telemetry::{Counter, Telemetry};

const X: TVarId = TVarId(0);
const Y: TVarId = TVarId(1);

fn factory2() -> BoxedTm {
    Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly))
}

fn factory3() -> BoxedTm {
    Box::new(FgpTm::new(3, 2, FgpVariant::CpOnly))
}

fn scripts2() -> Vec<ClientScript> {
    vec![ClientScript::increment(X), ClientScript::increment(X)]
}

fn scripts3() -> Vec<ClientScript> {
    vec![
        ClientScript::increment(X),
        ClientScript::increment(X),
        ClientScript::read_both(X, Y),
    ]
}

fn bench_two_processes(c: &mut Criterion) {
    let scripts = scripts2();
    let mut group = c.benchmark_group("explorer/2p");
    group.sample_size(10);
    for depth in [8usize, 10, 12] {
        group.bench_with_input(BenchmarkId::new("naive", depth), &depth, |b, &d| {
            b.iter(|| explore_schedules_naive(factory2, &scripts, d))
        });
        group.bench_with_input(BenchmarkId::new("dfs-seq", depth), &depth, |b, &d| {
            b.iter(|| explore_with(factory2, &scripts, &ExploreConfig::new(d).sequential()))
        });
        group.bench_with_input(BenchmarkId::new("dfs-par", depth), &depth, |b, &d| {
            b.iter(|| explore_with(factory2, &scripts, &ExploreConfig::new(d)))
        });
        group.bench_with_input(BenchmarkId::new("dfs-sleep", depth), &depth, |b, &d| {
            b.iter(|| {
                explore_with(
                    factory2,
                    &scripts,
                    &ExploreConfig::new(d).sequential().with_sleep_sets(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("dfs-dpor", depth), &depth, |b, &d| {
            b.iter(|| {
                explore_with(
                    factory2,
                    &scripts,
                    &ExploreConfig::new(d).sequential().with_dpor(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("dfs-optimal", depth), &depth, |b, &d| {
            b.iter(|| {
                explore_with(
                    factory2,
                    &scripts,
                    &ExploreConfig::new(d).sequential().with_optimal_dpor(),
                )
            })
        });
    }
    group.finish();
}

fn bench_three_processes(c: &mut Criterion) {
    let scripts = scripts3();
    let mut group = c.benchmark_group("explorer/3p");
    group.sample_size(10);
    for depth in [6usize, 7, 8] {
        group.bench_with_input(BenchmarkId::new("naive", depth), &depth, |b, &d| {
            b.iter(|| explore_schedules_naive(factory3, &scripts, d))
        });
        group.bench_with_input(BenchmarkId::new("dfs-seq", depth), &depth, |b, &d| {
            b.iter(|| explore_with(factory3, &scripts, &ExploreConfig::new(d).sequential()))
        });
        group.bench_with_input(BenchmarkId::new("dfs-par", depth), &depth, |b, &d| {
            b.iter(|| explore_with(factory3, &scripts, &ExploreConfig::new(d)))
        });
        group.bench_with_input(BenchmarkId::new("dfs-dpor", depth), &depth, |b, &d| {
            b.iter(|| {
                explore_with(
                    factory3,
                    &scripts,
                    &ExploreConfig::new(d).sequential().with_dpor(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("dfs-optimal", depth), &depth, |b, &d| {
            b.iter(|| {
                explore_with(
                    factory3,
                    &scripts,
                    &ExploreConfig::new(d).sequential().with_optimal_dpor(),
                )
            })
        });
    }
    group.finish();
}

/// Emits `BENCH_explorer.json`: the headline comparison table plus the
/// deep-bound runs the naive enumerator cannot reach comfortably.
fn emit_json(_c: &mut Criterion) {
    let run = BenchRun::from_args();
    let (test_mode, runs) = (run.test_mode, run.runs);

    let mut rows = Vec::new();
    let mut headline_speedup = 0.0;
    let mut headline_dpor_reduction = 0.0;
    let mut headline_optimal_reduction = 0.0;
    let table: &[(usize, usize)] = if test_mode {
        &[(2, 6)]
    } else {
        &[(2, 8), (2, 10), (2, 12), (3, 6), (3, 7), (3, 8)]
    };
    for &(procs, depth) in table {
        let (factory, scripts): (fn() -> BoxedTm, Vec<ClientScript>) = if procs == 2 {
            (factory2, scripts2())
        } else {
            (factory3, scripts3())
        };
        // Interleave the configurations round by round so slow drift
        // (thermal, co-tenancy) hits them evenly.
        let (mut naive, mut dfs, mut par, mut sleep, mut dpor, mut optimal) = (
            f64::INFINITY,
            f64::INFINITY,
            f64::INFINITY,
            f64::INFINITY,
            f64::INFINITY,
            f64::INFINITY,
        );
        for _ in 0..runs {
            naive = naive.min(best_secs(1, || {
                explore_schedules_naive(factory, &scripts, depth);
            }));
            dfs = dfs.min(best_secs(1, || {
                explore_with(factory, &scripts, &ExploreConfig::new(depth).sequential());
            }));
            par = par.min(best_secs(1, || {
                explore_with(factory, &scripts, &ExploreConfig::new(depth));
            }));
            sleep = sleep.min(best_secs(1, || {
                explore_with(
                    factory,
                    &scripts,
                    &ExploreConfig::new(depth).sequential().with_sleep_sets(),
                );
            }));
            dpor = dpor.min(best_secs(1, || {
                explore_with(
                    factory,
                    &scripts,
                    &ExploreConfig::new(depth).sequential().with_dpor(),
                );
            }));
            optimal = optimal.min(best_secs(1, || {
                explore_with(
                    factory,
                    &scripts,
                    &ExploreConfig::new(depth).sequential().with_optimal_dpor(),
                );
            }));
        }
        if procs == 2 && depth == 10 {
            headline_speedup = naive / dfs;
        }
        // Executed-schedule counts: the equivalence-class reduction.
        // The sample runs carry counter-mode telemetry so the artifact
        // rows gain the engine's own tallies (sleep-set blocks, DPOR
        // races, TM fork/refork traffic) alongside the timings.
        let sleep_telemetry = Telemetry::counters();
        let sleep_sample = explore_with(
            factory,
            &scripts,
            &ExploreConfig::new(depth)
                .sequential()
                .with_sleep_sets()
                .with_telemetry(&sleep_telemetry),
        );
        let dpor_telemetry = Telemetry::counters();
        let dpor_sample = explore_with(
            factory,
            &scripts,
            &ExploreConfig::new(depth)
                .sequential()
                .with_dpor()
                .with_telemetry(&dpor_telemetry),
        );
        // The optimal-DPOR sample streams when `TM_TELEMETRY` is set
        // (the CI smoke does), so each row is followed by a
        // `counter_snapshot` event pinning `sleep_blocked_executions: 0`
        // in the NDJSON stream; otherwise it accumulates counters only.
        let optimal_telemetry = {
            let streamed = Telemetry::from_env();
            if streamed.streams() {
                streamed
            } else {
                Telemetry::counters()
            }
        };
        let optimal_sample = explore_with(
            factory,
            &scripts,
            &ExploreConfig::new(depth)
                .sequential()
                .with_optimal_dpor()
                .with_telemetry(&optimal_telemetry),
        );
        let (sleep_snap, dpor_snap, optimal_snap) = (
            sleep_telemetry.snapshot(),
            dpor_telemetry.snapshot(),
            optimal_telemetry.snapshot(),
        );
        assert_eq!(
            sleep_sample.all_opaque(),
            dpor_sample.all_opaque(),
            "DPOR changed a verdict at {procs}p depth {depth}"
        );
        assert_eq!(
            dpor_sample.all_opaque(),
            optimal_sample.all_opaque(),
            "optimal DPOR changed a verdict at {procs}p depth {depth}"
        );
        // Optimality: never more executions than source sets (strictly
        // fewer once a race has multiple weak initials, i.e. ≥3
        // processes), and not one sleep-blocked execution.
        assert!(
            optimal_sample.schedules <= dpor_sample.schedules,
            "optimal DPOR executed more than source sets at {procs}p depth {depth}"
        );
        if procs >= 3 {
            assert!(
                optimal_sample.schedules < dpor_sample.schedules,
                "optimal DPOR must beat source sets at {procs}p depth {depth}"
            );
        }
        assert_eq!(
            optimal_snap.get(Counter::SleepBlockedExecutions),
            0,
            "optimal DPOR started a redundant execution at {procs}p depth {depth}"
        );
        let reduction = sleep_sample.schedules as f64 / dpor_sample.schedules as f64;
        let optimal_reduction = dpor_sample.schedules as f64 / optimal_sample.schedules as f64;
        if procs == 3 && depth == 8 {
            headline_dpor_reduction = reduction;
            headline_optimal_reduction = optimal_reduction;
        }
        rows.push(Json::Obj(vec![
            ("processes".into(), Json::Int(procs as i64)),
            ("depth".into(), Json::Int(depth as i64)),
            (
                "schedules".into(),
                Json::Int((procs as i64).pow(depth as u32)),
            ),
            ("naive_ms".into(), Json::Num(naive * 1e3)),
            ("dfs_seq_ms".into(), Json::Num(dfs * 1e3)),
            // Since the PR-5 kernel extraction the sequential DFS *is*
            // the engine path; the column exists so the kernel's cost is
            // tracked across PRs against the pre-refactor dfs_seq_ms
            // history (one measurement, two names — a second timing of
            // the same call would only record noise).
            ("dfs_engine_ms".into(), Json::Num(dfs * 1e3)),
            ("dfs_par_ms".into(), Json::Num(par * 1e3)),
            ("dfs_sleep_ms".into(), Json::Num(sleep * 1e3)),
            ("dfs_dpor_ms".into(), Json::Num(dpor * 1e3)),
            ("dfs_optimal_ms".into(), Json::Num(optimal * 1e3)),
            (
                "sleep_schedules".into(),
                Json::Int(sleep_sample.schedules as i64),
            ),
            (
                "executed_schedules".into(),
                Json::Int(dpor_sample.schedules as i64),
            ),
            (
                "optimal_schedules".into(),
                Json::Int(optimal_sample.schedules as i64),
            ),
            // Structurally 0 on 2-process rows: the coarse per-variable
            // relation behind sleep-set mode never fires when both
            // clients share one variable (see the module docs); the
            // fine-oracle analogue is dpor_sleep_blocked_executions.
            (
                "sleep_set_blocks".into(),
                Json::Int(sleep_snap.get(Counter::SleepSetBlocks) as i64),
            ),
            (
                "dpor_races".into(),
                Json::Int(dpor_snap.get(Counter::DporRaces) as i64),
            ),
            (
                "dpor_schedules_pruned".into(),
                Json::Int(dpor_snap.get(Counter::SchedulesPruned) as i64),
            ),
            (
                "dpor_tm_forks".into(),
                Json::Int(dpor_snap.get(Counter::TmForks) as i64),
            ),
            (
                "dpor_tm_reforks".into(),
                Json::Int(dpor_snap.get(Counter::TmReforks) as i64),
            ),
            (
                "dpor_sleep_blocked_executions".into(),
                Json::Int(dpor_snap.get(Counter::SleepBlockedExecutions) as i64),
            ),
            (
                "wakeup_inserts".into(),
                Json::Int(optimal_snap.get(Counter::WakeupInserts) as i64),
            ),
            (
                "wakeup_redundant".into(),
                Json::Int(optimal_snap.get(Counter::WakeupRedundant) as i64),
            ),
            (
                "sleep_blocked_executions".into(),
                Json::Int(optimal_snap.get(Counter::SleepBlockedExecutions) as i64),
            ),
            ("dpor_reduction_vs_sleep".into(), Json::Num(reduction)),
            (
                "optimal_reduction_vs_dpor".into(),
                Json::Num(optimal_reduction),
            ),
            ("speedup_dfs_vs_naive".into(), Json::Num(naive / dfs)),
            ("speedup_par_vs_seq".into(), Json::Num(dfs / par)),
            ("speedup_dpor_vs_sleep".into(), Json::Num(sleep / dpor)),
        ]));
    }

    // Deep bounds: the new routine frontier (DFS only — the point is
    // that these depths are now cheap).
    let mut deep = Vec::new();
    let deep_table: &[(usize, usize)] = if test_mode {
        &[(2, 8)]
    } else {
        &[(2, 14), (2, 16), (3, 10), (3, 11)]
    };
    for &(procs, depth) in deep_table {
        let (factory, scripts): (fn() -> BoxedTm, Vec<ClientScript>) = if procs == 2 {
            (factory2, scripts2())
        } else {
            (factory3, scripts3())
        };
        let par = best_secs(runs.min(3), || {
            let result = explore_with(factory, &scripts, &ExploreConfig::new(depth));
            assert!(result.all_opaque());
        });
        deep.push(Json::Obj(vec![
            ("processes".into(), Json::Int(procs as i64)),
            ("depth".into(), Json::Int(depth as i64)),
            (
                "schedules".into(),
                Json::Int((procs as i64).pow(depth as u32)),
            ),
            ("dfs_par_ms".into(), Json::Num(par * 1e3)),
        ]));
    }

    // Differential parity on a verdict-bearing workload.
    let buggy_scripts = vec![
        ClientScript::increment(X),
        ClientScript::new(vec![
            tm_sim::PlannedOp::Read(X),
            tm_sim::PlannedOp::Write(X, 5),
        ]),
    ];
    let parity_depth = if test_mode { 6 } else { 9 };
    let naive = explore_schedules_naive(|| tm_stm::literal_fgp(2, 1), &buggy_scripts, parity_depth);
    let dfs = explore_with(
        || tm_stm::literal_fgp(2, 1),
        &buggy_scripts,
        &ExploreConfig::new(parity_depth),
    );
    let parity = naive == dfs;
    // DPOR parity: identical verdict, and every violation it reports is
    // one the naive enumerator reports verbatim.
    let dpor = explore_with(
        || tm_stm::literal_fgp(2, 1),
        &buggy_scripts,
        &ExploreConfig::new(parity_depth).sequential().with_dpor(),
    );
    let dpor_parity = naive.all_opaque() == dpor.all_opaque()
        && dpor.violations.iter().all(|v| naive.violations.contains(v));
    // Optimal-DPOR parity on the same verdict-bearing workload: the
    // wakeup-tree walk must also find the leak, reporting only
    // violations the naive enumerator reports verbatim.
    let optimal = explore_with(
        || tm_stm::literal_fgp(2, 1),
        &buggy_scripts,
        &ExploreConfig::new(parity_depth)
            .sequential()
            .with_optimal_dpor(),
    );
    let optimal_parity = naive.all_opaque() == optimal.all_opaque()
        && optimal
            .violations
            .iter()
            .all(|v| naive.violations.contains(v));

    run.emit(
        "explorer",
        vec![
            ("tm".into(), Json::str("fgp")),
            ("comparison".into(), Json::Arr(rows)),
            ("deep_bounds".into(), Json::Arr(deep)),
            (
                "headline_speedup_dfs_vs_naive_2p_depth10".into(),
                Json::Num(headline_speedup),
            ),
            (
                "headline_dpor_reduction_vs_sleep_3p_depth8".into(),
                Json::Num(headline_dpor_reduction),
            ),
            (
                "headline_optimal_reduction_vs_dpor_3p_depth8".into(),
                Json::Num(headline_optimal_reduction),
            ),
            ("verdict_parity_with_naive".into(), Json::Bool(parity)),
            ("dpor_verdict_parity".into(), Json::Bool(dpor_parity)),
            (
                "optimal_dpor_verdict_parity".into(),
                Json::Bool(optimal_parity),
            ),
        ],
    );
    if !test_mode {
        assert!(
            headline_dpor_reduction >= 5.0,
            "DPOR must execute ≥5× fewer schedules than sleep sets at 3p depth 8 \
             (got {headline_dpor_reduction:.1}×)"
        );
        assert!(
            headline_optimal_reduction >= 1.5,
            "optimal DPOR must execute ≥1.5× fewer schedules than source sets at 3p \
             depth 8 (got {headline_optimal_reduction:.2}×)"
        );
    }
    assert!(parity, "DFS and naive explorer reports must be identical");
    assert!(dpor_parity, "DPOR diverged from the naive verdict");
    assert!(
        optimal_parity,
        "optimal DPOR diverged from the naive verdict"
    );
}

// `emit_json` runs first: on small single-core runners, minutes of
// sustained benching can thermally throttle the box, and the committed
// artifact should reflect steady-state rather than post-throttle timing.
criterion_group!(
    benches,
    emit_json,
    bench_two_processes,
    bench_three_processes
);
criterion_main!(benches);
