//! PERF3 — adversary game throughput: how many Theorem 1 rounds per second
//! each TM sustains against Algorithm 1 / Algorithm 2, and the model
//! checker's schedule-exploration rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_adversary::{run_game, Algorithm1, Algorithm2, GameConfig};
use tm_core::TVarId;
use tm_sim::{explore_schedules, ClientScript};
use tm_stm::{nonblocking_catalog, BoxedTm, FgpTm};

const X: TVarId = TVarId(0);
const STEPS: usize = 10_000;

fn bench_adversary_games(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary_rounds");
    group.sample_size(10);
    group.throughput(Throughput::Elements(STEPS as u64));
    let names: Vec<String> = nonblocking_catalog(2, 1)
        .iter()
        .map(|tm| tm.name().to_string())
        .collect();
    for (idx, name) in names.iter().enumerate() {
        group.bench_with_input(BenchmarkId::new("algorithm1", name), &idx, |b, &idx| {
            b.iter(|| {
                let mut tm = nonblocking_catalog(2, 1).remove(idx);
                let mut adv = Algorithm1::new(X);
                run_game(tm.as_mut(), &mut adv, GameConfig::steps(STEPS)).rounds
            })
        });
        group.bench_with_input(BenchmarkId::new("algorithm2", name), &idx, |b, &idx| {
            b.iter(|| {
                let mut tm = nonblocking_catalog(2, 1).remove(idx);
                let mut adv = Algorithm2::new(X);
                run_game(tm.as_mut(), &mut adv, GameConfig::steps(STEPS)).rounds
            })
        });
        group.bench_with_input(
            BenchmarkId::new("algorithm1_checked", name),
            &idx,
            |b, &idx| {
                b.iter(|| {
                    let mut tm = nonblocking_catalog(2, 1).remove(idx);
                    let mut adv = Algorithm1::new(X);
                    run_game(
                        tm.as_mut(),
                        &mut adv,
                        GameConfig::steps(STEPS).check_opacity(),
                    )
                    .rounds
                })
            },
        );
    }
    group.finish();
}

fn bench_model_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_checker");
    group.sample_size(10);
    for &depth in &[8usize, 10] {
        group.throughput(Throughput::Elements(1u64 << depth));
        group.bench_with_input(BenchmarkId::new("fgp_2proc", depth), &depth, |b, &depth| {
            let scripts = vec![ClientScript::increment(X), ClientScript::increment(X)];
            b.iter(|| {
                explore_schedules(
                    || Box::new(FgpTm::new(2, 1, tm_automata::FgpVariant::CpOnly)) as BoxedTm,
                    &scripts,
                    depth,
                )
                .schedules
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adversary_games, bench_model_checker);
criterion_main!(benches);
