//! PERF2 — cost of the safety checkers: the exact witness-search opacity
//! checker vs transaction count, and the incremental commit-order
//! certifier's per-event throughput on long adversary-shaped histories.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_core::{History, HistoryBuilder, ProcessId, TVarId};
use tm_safety::{check_opacity, IncrementalChecker, Mode};

const X: TVarId = TVarId(0);

/// A sequential chain of committed increments by alternating processes —
/// the friendly case for the exact checker (one witness order).
fn chain_history(txs: usize) -> History {
    let mut b = HistoryBuilder::new();
    for i in 0..txs {
        let p = ProcessId(i % 2);
        b.read(p, X, i as u64)
            .write_ok(p, X, i as u64 + 1)
            .commit(p);
    }
    b.build().unwrap()
}

/// Concurrent snapshot readers around committed writers — forces witness
/// reordering (the expensive case).
fn contended_history(txs: usize) -> History {
    let (p1, p2) = (ProcessId(0), ProcessId(1));
    let mut b = HistoryBuilder::new();
    for i in 0..txs {
        let v = i as u64;
        // Reader observes the pre-write state while the writer commits.
        b.read(p1, X, v)
            .write_ok(p2, X, v + 1)
            .commit(p2)
            .abort_on_try_commit(p1);
    }
    b.build().unwrap()
}

/// The Algorithm 1 round pattern, used to measure the online certifier.
fn adversary_history(rounds: usize) -> History {
    let (p1, p2) = (ProcessId(0), ProcessId(1));
    let mut b = HistoryBuilder::new();
    for i in 0..rounds {
        let v = i as u64;
        b.read(p1, X, v)
            .read(p2, X, v)
            .write_ok(p2, X, v + 1)
            .commit(p2)
            .write_ok(p1, X, v + 1)
            .abort_on_try_commit(p1);
    }
    b.build().unwrap()
}

fn bench_exact_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_opacity");
    for &txs in &[4usize, 8, 16, 32, 64] {
        let chain = chain_history(txs);
        group.bench_with_input(BenchmarkId::new("chain", txs), &chain, |b, h| {
            b.iter(|| check_opacity(h).unwrap().holds())
        });
        let contended = contended_history(txs / 2);
        group.bench_with_input(BenchmarkId::new("contended", txs), &contended, |b, h| {
            b.iter(|| check_opacity(h).unwrap().holds())
        });
    }
    group.finish();
}

fn bench_incremental_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_opacity");
    group.sample_size(20);
    for &rounds in &[1_000usize, 10_000, 100_000] {
        let h = adversary_history(rounds);
        group.throughput(Throughput::Elements(h.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &h, |b, h| {
            b.iter(|| {
                let mut checker = IncrementalChecker::new(Mode::Opacity);
                checker.push_all(h.iter().copied()).unwrap();
                checker.commits()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_checker, bench_incremental_checker);
criterion_main!(benches);
