//! PERF5 — streaming opacity at production traffic: sustained
//! *certified* throughput of the online pipeline (sharded recorder →
//! chunker → parallel certifier) and how far certification trails
//! recording.
//!
//! Emitted as `BENCH_online.json` at the workspace root. Each row is
//! one TM × thread-count cell of the bank workload and records the
//! machine's `cores` and the worker `threads` alongside the rates —
//! `tm-obs diff` refuses to compare rows whose `cores` or `threads`
//! differ, so cross-machine or cross-shape comparisons fail loudly
//! instead of reading as regressions.
//!
//! `certified_ops_per_sec` counts recorded events per wall-clock second
//! *with the verdict in hand* (the pipeline joined), not just recorded:
//! it is the price of running the certifier inline with the workload.
//!
//! Run: `cargo bench -p bench --bench stm_online`

use std::time::Instant;

use bench::{BenchRun, Json};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_sim::{certify_workload, OnlineConfig, OnlineReport, OnlineWorkload};
use tm_stm::concurrent::{ConcurrentGlobalLock, ConcurrentNOrec, ConcurrentTl2};

const ACCOUNTS: usize = 16;

fn workload(threads: usize, txs_per_thread: u64) -> OnlineWorkload {
    OnlineWorkload {
        threads,
        accounts: ACCOUNTS,
        txs_per_thread,
        seed: 0x6a1e_55ed,
    }
}

fn run_one(tm_name: &str, threads: usize, txs_per_thread: u64) -> (OnlineReport, f64) {
    let wl = workload(threads, txs_per_thread);
    let config = OnlineConfig::default();
    let start = Instant::now();
    let report = match tm_name {
        "tl2" => certify_workload(ConcurrentTl2::new(ACCOUNTS), &wl, config),
        "norec" => certify_workload(ConcurrentNOrec::new(ACCOUNTS), &wl, config),
        "global-lock" => certify_workload(ConcurrentGlobalLock::new(ACCOUNTS), &wl, config),
        other => panic!("unknown tm {other}"),
    };
    let secs = start.elapsed().as_secs_f64();
    assert!(
        report.certified_opaque(),
        "{tm_name} must certify opaque, got {:?}",
        report.violation
    );
    (report, secs)
}

fn bench_online(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm_online");
    group.sample_size(10);
    for &threads in &[1usize, 2] {
        group.throughput(Throughput::Elements(2_000 * threads as u64));
        group.bench_with_input(BenchmarkId::new("tl2", threads), &threads, |b, &threads| {
            b.iter(|| run_one("tl2", threads, 2_000));
        });
    }
    group.finish();
}

fn emit_json(_c: &mut Criterion) {
    let run = BenchRun::from_args();
    let txs_per_thread: u64 = if run.test_mode { 200 } else { 10_000 };
    let thread_counts: &[usize] = if run.test_mode { &[1] } else { &[1, 2, 4] };

    let mut rows = Vec::new();
    for tm in ["tl2", "norec", "global-lock"] {
        for &threads in thread_counts {
            let (mut best, mut best_secs) = (None, f64::INFINITY);
            for _ in 0..run.runs.min(3) {
                let (report, secs) = run_one(tm, threads, txs_per_thread);
                if secs < best_secs {
                    best_secs = secs;
                    best = Some(report);
                }
            }
            let report = best.expect("at least one run");
            rows.push(Json::Obj(vec![
                ("tm".into(), Json::str(tm)),
                ("threads".into(), Json::Int(threads as i64)),
                ("cores".into(), Json::Int(run.cores as i64)),
                ("accounts".into(), Json::Int(ACCOUNTS as i64)),
                ("ops".into(), Json::Int(report.events as i64)),
                ("commits".into(), Json::Int(report.commits as i64)),
                ("aborts".into(), Json::Int(report.aborts as i64)),
                (
                    "certified_ops_per_sec".into(),
                    Json::Num(report.events as f64 / best_secs.max(1e-9)),
                ),
                ("wall_ms".into(), Json::Num(best_secs * 1e3)),
                ("epochs".into(), Json::Int(report.epochs_sealed as i64)),
                ("chunks".into(), Json::Int(report.chunks_certified as i64)),
                (
                    "max_lag_epochs".into(),
                    Json::Int(report.max_lag_epochs as i64),
                ),
            ]));
        }
    }
    run.emit("online", vec![("pipeline".into(), Json::Arr(rows))]);
}

criterion_group!(benches, bench_online, emit_json);
criterion_main!(benches);
