//! PERF1 — committed-transaction throughput of the concurrent TMs across
//! thread counts and contention levels (the paper's footnote-1 shape:
//! resilient fine-grained TMs scale, the global lock does not).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tm_core::TVarId;
use tm_stm::concurrent::{
    atomically, ConcurrentGlobalLock, ConcurrentNOrec, ConcurrentTl2, ConcurrentTm,
    Transaction as _,
};

const TXNS_PER_THREAD: usize = 2_000;

/// Runs `threads` workers, each committing `TXNS_PER_THREAD` transfer
/// transactions over `accounts` accounts.
fn run<T: ConcurrentTm + 'static>(tm: &Arc<T>, threads: usize, accounts: usize) {
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let tm = Arc::clone(tm);
            std::thread::spawn(move || {
                let mut s = 0x9E3779B97F4A7C15u64 ^ (t as u64).wrapping_mul(0x2545F4914F6CDD1D);
                for _ in 0..TXNS_PER_THREAD {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    let from = (s % accounts as u64) as usize;
                    let to = ((s >> 17) % accounts as u64) as usize;
                    atomically(&*tm, |tx| {
                        let a = tx.read(TVarId(from))?;
                        let b = tx.read(TVarId(to))?;
                        tx.write(TVarId(from), a.wrapping_sub(1))?;
                        tx.write(TVarId(to), b.wrapping_add(1))
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn bench_throughput(c: &mut Criterion) {
    // Two contention levels: 4 accounts (hot) and 1024 accounts (cold).
    for &accounts in &[4usize, 1024] {
        let mut group = c.benchmark_group(format!("stm_throughput/accounts={accounts}"));
        group.sample_size(10);
        for &threads in &[1usize, 2, 4] {
            group.throughput(Throughput::Elements((threads * TXNS_PER_THREAD) as u64));
            group.bench_with_input(
                BenchmarkId::new("global-lock", threads),
                &threads,
                |b, &threads| {
                    let tm = Arc::new(ConcurrentGlobalLock::new(accounts));
                    b.iter(|| run(&tm, threads, accounts));
                },
            );
            group.bench_with_input(BenchmarkId::new("tl2", threads), &threads, |b, &threads| {
                let tm = Arc::new(ConcurrentTl2::new(accounts));
                b.iter(|| run(&tm, threads, accounts));
            });
            group.bench_with_input(
                BenchmarkId::new("norec", threads),
                &threads,
                |b, &threads| {
                    let tm = Arc::new(ConcurrentNOrec::new(accounts));
                    b.iter(|| run(&tm, threads, accounts));
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
