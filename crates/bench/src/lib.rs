//! Shared helpers for the figure/theorem harness binaries.
//!
//! Each binary in `src/bin/` regenerates one figure or theorem of the
//! paper (see DESIGN.md §5 and EXPERIMENTS.md); this crate provides the
//! small amount of shared output plumbing.

/// Prints a section header in the harness output style.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a key/value result row.
pub fn row(key: &str, value: impl std::fmt::Display) {
    println!("  {key:<44} {value}");
}

/// Prints a pass/fail verdict row and returns whether it passed (so
/// harnesses can exit non-zero on unexpected results).
pub fn verdict(key: &str, pass: bool) -> bool {
    println!("  {key:<44} {}", if pass { "PASS" } else { "FAIL" });
    pass
}

/// Tracks harness-wide success and produces the process exit code.
#[derive(Debug, Default)]
pub struct Outcome {
    failures: usize,
}

impl Outcome {
    /// Creates a fresh outcome tracker.
    pub fn new() -> Self {
        Outcome::default()
    }

    /// Records a checked verdict.
    pub fn check(&mut self, key: &str, pass: bool) {
        if !verdict(key, pass) {
            self.failures += 1;
        }
    }

    /// Exits the process with a non-zero status if any check failed.
    pub fn finish(self, experiment: &str) -> ! {
        if self.failures == 0 {
            println!("\n{experiment}: all checks passed");
            std::process::exit(0)
        } else {
            println!("\n{experiment}: {} check(s) FAILED", self.failures);
            std::process::exit(1)
        }
    }
}
