//! Shared helpers for the figure/theorem harness binaries.
//!
//! Each binary in `src/bin/` regenerates one figure or theorem of the
//! paper (see DESIGN.md §5 and EXPERIMENTS.md); this crate provides the
//! small amount of shared output plumbing.

/// Prints a section header in the harness output style.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a key/value result row.
pub fn row(key: &str, value: impl std::fmt::Display) {
    println!("  {key:<44} {value}");
}

/// Prints a pass/fail verdict row and returns whether it passed (so
/// harnesses can exit non-zero on unexpected results).
pub fn verdict(key: &str, pass: bool) -> bool {
    println!("  {key:<44} {}", if pass { "PASS" } else { "FAIL" });
    pass
}

/// The JSON value used for machine-readable benchmark artifacts
/// (`BENCH_*.json`), shared with the telemetry crate's NDJSON event
/// stream so both wire formats are serialized by one implementation
/// (same float precision, same escaping) without an external
/// serialization dependency.
pub use tm_telemetry::Json;

/// Minimum wall-clock seconds per execution over `runs` rounds, batching
/// each round to ≥ 2 ms. The minimum is the standard noise-robust
/// estimator for deterministic workloads on a shared machine: scheduler
/// preemption and frequency drift only ever inflate a sample.
pub fn best_secs(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs.max(1) {
        let mut iters = 0u32;
        let start = std::time::Instant::now();
        loop {
            f();
            iters += 1;
            if start.elapsed() >= std::time::Duration::from_millis(2) {
                break;
            }
        }
        best = best.min(start.elapsed().as_secs_f64() / f64::from(iters));
    }
    best
}

/// Shared context for a `BENCH_*.json` emitter: smoke-test mode, round
/// count, and the standard envelope every artifact carries.
#[derive(Debug, Clone, Copy)]
pub struct BenchRun {
    /// Whether this is a CI smoke run (`-- --test`): shallow tables,
    /// one round, and no artifact write (the committed full-run file
    /// must not be clobbered with throwaway rows).
    pub test_mode: bool,
    /// Measurement rounds per timing (1 in test mode, 7 otherwise).
    pub runs: usize,
    /// `std::thread::available_parallelism()` — recorded in every
    /// artifact so parallel-speedup columns can be read in context.
    pub cores: usize,
}

impl BenchRun {
    /// Reads the run context from the process arguments.
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        BenchRun {
            test_mode,
            runs: if test_mode { 1 } else { 7 },
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    /// Wraps `fields` in the standard envelope (`bench` name, `cores`,
    /// `test_mode` first) and writes `BENCH_<name>.json` — or, in test
    /// mode, prints the report instead of touching the committed
    /// artifact.
    pub fn emit(&self, name: &str, fields: Vec<(String, Json)>) {
        let mut pairs = vec![
            ("bench".into(), Json::str(name)),
            ("cores".into(), Json::Int(self.cores as i64)),
            ("test_mode".into(), Json::Bool(self.test_mode)),
        ];
        pairs.extend(fields);
        let report = Json::Obj(pairs);
        if self.test_mode {
            println!("test mode: skipping BENCH_{name}.json write\n{report}");
        } else {
            write_bench_json(name, &report).expect("write artifact");
        }
    }
}

/// Writes a `BENCH_<name>.json` artifact at the workspace root and
/// reports where.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_bench_json(name: &str, value: &Json) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("BENCH_{name}.json"));
    std::fs::write(&path, format!("{value}\n"))?;
    println!("wrote {}", path.display());
    Ok(path)
}

/// Tracks harness-wide success and produces the process exit code.
#[derive(Debug, Default)]
pub struct Outcome {
    failures: usize,
}

impl Outcome {
    /// Creates a fresh outcome tracker.
    pub fn new() -> Self {
        Outcome::default()
    }

    /// Records a checked verdict.
    pub fn check(&mut self, key: &str, pass: bool) {
        if !verdict(key, pass) {
            self.failures += 1;
        }
    }

    /// Exits the process with a non-zero status if any check failed.
    pub fn finish(self, experiment: &str) -> ! {
        if self.failures == 0 {
            println!("\n{experiment}: all checks passed");
            std::process::exit(0)
        } else {
            println!("\n{experiment}: {} check(s) FAILED", self.failures);
            std::process::exit(1)
        }
    }
}
