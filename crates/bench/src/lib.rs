//! Shared helpers for the figure/theorem harness binaries.
//!
//! Each binary in `src/bin/` regenerates one figure or theorem of the
//! paper (see DESIGN.md §5 and EXPERIMENTS.md); this crate provides the
//! small amount of shared output plumbing.

/// Prints a section header in the harness output style.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a key/value result row.
pub fn row(key: &str, value: impl std::fmt::Display) {
    println!("  {key:<44} {value}");
}

/// Prints a pass/fail verdict row and returns whether it passed (so
/// harnesses can exit non-zero on unexpected results).
pub fn verdict(key: &str, pass: bool) -> bool {
    println!("  {key:<44} {}", if pass { "PASS" } else { "FAIL" });
    pass
}

/// Minimal JSON value for machine-readable benchmark artifacts
/// (`BENCH_*.json`), so perf trajectories can be tracked across PRs
/// without a serialization dependency.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A boolean.
    Bool(bool),
    /// An integer (emitted without a fraction).
    Int(i64),
    /// A float (emitted with millisecond-scale precision).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(x) => {
                if x.is_finite() {
                    write!(f, "{x:.3}")
                } else {
                    write!(f, "null")
                }
            }
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes a `BENCH_<name>.json` artifact at the workspace root and
/// reports where.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_bench_json(name: &str, value: &Json) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("BENCH_{name}.json"));
    std::fs::write(&path, format!("{value}\n"))?;
    println!("wrote {}", path.display());
    Ok(path)
}

/// Tracks harness-wide success and produces the process exit code.
#[derive(Debug, Default)]
pub struct Outcome {
    failures: usize,
}

impl Outcome {
    /// Creates a fresh outcome tracker.
    pub fn new() -> Self {
        Outcome::default()
    }

    /// Records a checked verdict.
    pub fn check(&mut self, key: &str, pass: bool) {
        if !verdict(key, pass) {
            self.failures += 1;
        }
    }

    /// Exits the process with a non-zero status if any check failed.
    pub fn finish(self, experiment: &str) -> ! {
        if self.failures == 0 {
            println!("\n{experiment}: all checks passed");
            std::process::exit(0)
        } else {
            println!("\n{experiment}: {} check(s) FAILED", self.failures);
            std::process::exit(1)
        }
    }
}
