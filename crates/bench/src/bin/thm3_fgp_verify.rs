//! THM3 — Theorem 3: `Fgp` ensures opacity and global progress in any
//! fault-prone system.
//!
//! (a) **Opacity** — bounded-exhaustive model checking: all `2^depth`
//!     (resp. `3^depth`) interleavings of increment/transfer clients are
//!     replayed and every produced history checked. The literal variant of
//!     the paper's formal rules *fails* this check (the documented
//!     specification bug); the corrected variants pass.
//! (b) **Global progress** — long fault-injected random runs: in every
//!     window some correct process commits, under crashes, parasites, and
//!     combinations.
//!
//! Run: `cargo run -p bench --release --bin thm3_fgp_verify`

use bench::{row, section, Outcome};
use tm_automata::FgpVariant;
use tm_core::{ProcessId, TVarId};
use tm_sim::{
    explore_schedules, simulate, Client, ClientScript, FaultPlan, PlannedOp, RandomScheduler,
    SimConfig,
};
use tm_stm::{BoxedTm, FgpTm};

const X: TVarId = TVarId(0);
const Y: TVarId = TVarId(1);

fn main() {
    let mut out = Outcome::new();

    section("(a) Model-checked opacity, 2 processes, depth 12");
    for variant in [FgpVariant::Literal, FgpVariant::Strict, FgpVariant::CpOnly] {
        let scripts = vec![
            ClientScript::increment(X),
            ClientScript::new(vec![PlannedOp::Read(X), PlannedOp::Write(X, 5)]),
        ];
        let result = explore_schedules(
            || Box::new(FgpTm::new(2, 1, variant)) as BoxedTm,
            &scripts,
            12,
        );
        row(
            &format!("{variant:?}"),
            format!(
                "schedules={} exact_fallbacks={} violations={}",
                result.schedules,
                result.exact_fallbacks,
                result.violations.len()
            ),
        );
        match variant {
            FgpVariant::Literal => {
                out.check(
                    "Literal variant violates opacity (paper bug)",
                    !result.all_opaque(),
                );
                if let Some(v) = result.violations.first() {
                    row(
                        "counterexample schedule",
                        format!(
                            "{:?}",
                            v.schedule.iter().map(|p| p.index() + 1).collect::<Vec<_>>()
                        ),
                    );
                    print!("{}", v.history.render_lanes());
                }
            }
            _ => out.check(
                &format!("{variant:?} variant: all histories opaque"),
                result.all_opaque(),
            ),
        }
    }

    section("(a') Model-checked opacity, 3 processes, depth 9");
    let scripts = vec![
        ClientScript::increment(X),
        ClientScript::transfer(X, Y),
        ClientScript::read_both(X, Y),
    ];
    let result = explore_schedules(
        || Box::new(FgpTm::new(3, 2, FgpVariant::CpOnly)) as BoxedTm,
        &scripts,
        9,
    );
    row(
        "CpOnly, 3 procs",
        format!(
            "schedules={} violations={}",
            result.schedules,
            result.violations.len()
        ),
    );
    out.check("3-process exhaustive check passes", result.all_opaque());

    section("(b) Global progress under fault storms (100k steps each)");
    let fault_plans: Vec<(&str, FaultPlan)> = vec![
        ("no faults", FaultPlan::none()),
        ("one crash", FaultPlan::none().crash(ProcessId(1), 500)),
        (
            "one parasite",
            FaultPlan::none().parasitic(ProcessId(1), 500),
        ),
        (
            "crash + parasite",
            FaultPlan::none()
                .crash(ProcessId(1), 400)
                .parasitic(ProcessId(2), 800),
        ),
        (
            "majority faulty",
            FaultPlan::none()
                .crash(ProcessId(1), 300)
                .crash(ProcessId(2), 600)
                .parasitic(ProcessId(3), 900),
        ),
    ];
    for (name, faults) in fault_plans {
        let n = 5;
        let mut tm = FgpTm::new(n, 2, FgpVariant::CpOnly);
        let mut clients: Vec<Client> = (0..n)
            .map(|k| {
                Client::new(if k % 2 == 0 {
                    ClientScript::increment(X)
                } else {
                    ClientScript::transfer(X, Y)
                })
            })
            .collect();
        let mut sched = RandomScheduler::new(0xFEED);
        let report = simulate(
            &mut tm,
            &mut clients,
            &mut sched,
            &faults,
            SimConfig::steps(100_000).check_opacity(),
        );
        let correct = faults.correct_processes(n);
        let windowed = report.global_progress_in_windows(5_000, &correct);
        let total: usize = correct.iter().map(|p| report.commits[p.index()]).sum();
        row(
            name,
            format!(
                "correct={:?} their_commits={} windowed_progress={} opacity={}",
                correct.iter().map(|p| p.index() + 1).collect::<Vec<_>>(),
                total,
                windowed,
                report.safety_ok
            ),
        );
        out.check(
            &format!("{name}: global progress + opacity"),
            windowed && report.safety_ok && total > 0,
        );
    }
    out.finish("THM3");
}
