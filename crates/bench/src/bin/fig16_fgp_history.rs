//! FIG16 — Figure 16: an example history `Hex` of `Fgp` with three
//! processes and two binary t-variables. The paper's figure shows p1
//! committing a write of `x` then aborting on a read of `y`; p2 aborting a
//! write of `y` then committing after reading both committed values; p3
//! committing a write of `y`. This harness replays an interleaving with
//! the same per-process shape against the real automaton, prints the
//! produced history, and verifies it is a genuine `Fgp` history and
//! opaque.
//!
//! Run: `cargo run -p bench --release --bin fig16_fgp_history`

use bench::{row, section, Outcome};
use tm_automata::{Fgp, FgpVariant, Runner};
use tm_core::{Invocation as Inv, ProcessId, Response, TVarId};
use tm_safety::{is_opaque, is_strictly_serializable};

const P1: ProcessId = ProcessId(0);
const P2: ProcessId = ProcessId(1);
const P3: ProcessId = ProcessId(2);
const X: TVarId = TVarId(0);
const Y: TVarId = TVarId(1);

fn main() {
    let mut out = Outcome::new();
    section("Replaying the Figure 16 shape against Fgp (CpOnly)");
    let mut r = Runner::new(Fgp::new(3, 2, FgpVariant::CpOnly));
    let mut expect = |who: ProcessId, inv: Inv, want: Response, out: &mut Outcome| {
        let got = r
            .invoke_and_deliver(who, inv)
            .expect("sequential driver")
            .expect("Fgp always responds");
        out.check(&format!("{who}: {inv} → {want}"), got == want);
    };

    // p1's first transaction: x.read → 0, x.write(1), commit.
    expect(P1, Inv::Read(X), Response::Value(0), &mut out);
    // p2 and p3 start concurrently with p1.
    expect(P2, Inv::Write(Y, 1), Response::Ok, &mut out); // p2: y.write(1)
    expect(P3, Inv::Read(Y), Response::Value(0), &mut out); // p3: y.read → 0
    expect(P1, Inv::Write(X, 1), Response::Ok, &mut out);
    expect(P1, Inv::TryCommit, Response::Committed, &mut out); // p1 commits: x = 1
                                                               // p2 and p3 were concurrent to p1's commit: their next events abort.
    expect(P2, Inv::TryCommit, Response::Aborted, &mut out); // p2: A (fig: y.write(1) A)
    expect(P3, Inv::Write(Y, 1), Response::Aborted, &mut out); // p3 doomed too
                                                               // p3 retries and commits y = 1.
    expect(P3, Inv::Read(Y), Response::Value(0), &mut out);
    expect(P3, Inv::Write(Y, 1), Response::Ok, &mut out);
    expect(P3, Inv::TryCommit, Response::Committed, &mut out); // y = 1
                                                               // p2's second transaction reads both committed values and commits.
    expect(P2, Inv::Read(Y), Response::Value(1), &mut out);
    expect(P2, Inv::Read(X), Response::Value(1), &mut out);
    expect(P2, Inv::TryCommit, Response::Committed, &mut out);
    // p1's second transaction: y.read → 1, then aborted? In the figure p1
    // reads y → 0 *before* p3's commit; here we exhibit the abort branch:
    // p1 reads and is concurrent to nothing, so it commits — instead show
    // the doomed case by racing it with p3's next commit.
    expect(P1, Inv::Read(Y), Response::Value(1), &mut out);
    expect(P3, Inv::Read(Y), Response::Value(1), &mut out);
    expect(P3, Inv::Write(Y, 0), Response::Ok, &mut out);
    expect(P3, Inv::TryCommit, Response::Committed, &mut out); // dooms p1
    expect(P1, Inv::TryCommit, Response::Aborted, &mut out); // p1: A (fig: y.read A)

    let history = r.history().clone();
    section("The produced history");
    print!("{}", history.render_lanes());
    row("events", history.len());
    out.check("history is opaque", is_opaque(&history));
    out.check(
        "history is strictly serializable",
        is_strictly_serializable(&history),
    );
    out.check(
        "per-process commit counts match the figure (p1:1, p2:1, p3:2)",
        history.commit_count(P1) == 1
            && history.commit_count(P2) == 1
            && history.commit_count(P3) == 2,
    );
    out.check(
        "p1 and p2 each abort once, like the figure",
        history.abort_count(P1) == 1 && history.abort_count(P2) == 1,
    );
    out.finish("FIG16");
}
