//! EXT-PRIO — the paper's §7 future work, explored experimentally:
//! "TM-liveness properties that guarantee progress for processes with
//! higher priority".
//!
//! The property (`PriorityProgress`): the highest-priority **correct**
//! process makes progress. It is nonblocking but not biprogressing, so
//! Theorem 2 does not forbid it. This harness shows:
//!
//! 1. **The shield works in fault-free runs**: `PriorityFgp` lets the
//!    protected process commit on *every* schedule we throw at it —
//!    including the Algorithm 1 opening that starves it on every ordinary
//!    TM, and heavily biased random schedules.
//! 2. **Plain TMs do not have this**: under the same biased schedules the
//!    top-priority process starves on plain `Fgp`.
//! 3. **The impossibility persists anyway**: if the protected process
//!    crashes or turns parasitic *mid-transaction*, every lower-priority
//!    process aborts forever. The lasso detector + classifier verify the
//!    resulting infinite history violates priority progress (the faulty
//!    top drops out of "correct", the new top correct process starves) —
//!    the same indistinguishability that powers Theorem 1.
//!
//! Run: `cargo run -p bench --release --bin ext_priority_progress`

use bench::{row, section, Outcome};
use tm_automata::FgpVariant;
use tm_core::{Invocation as Inv, ProcessId, Response, TVarId};
use tm_liveness::{classify, detect_lasso, PriorityProgress, ProcessClass, TmLivenessProperty};
use tm_sim::{simulate, Client, ClientScript, FaultPlan, SimConfig, WeightedScheduler};
use tm_stm::{FgpTm, PriorityFgp, Recorded, SteppedTm};

const P1: ProcessId = ProcessId(0);
const P2: ProcessId = ProcessId(1);
const X: TVarId = TVarId(0);

fn resp(tm: &mut impl SteppedTm, p: ProcessId, inv: Inv) -> Response {
    tm.invoke(p, inv).response().expect("never blocks")
}

/// The Algorithm 1 round, repeated: p1 reads, p2 tries to commit over it,
/// then p1 tries to finish. Returns (p1 commits, p2 commits).
fn adversary_rounds(tm: &mut impl SteppedTm, rounds: usize) -> (usize, usize) {
    let mut commits = (0usize, 0usize);
    for _ in 0..rounds {
        let v = match resp(tm, P1, Inv::Read(X)) {
            Response::Value(v) => Some(v),
            _ => None,
        };
        loop {
            let r = resp(tm, P2, Inv::Read(X));
            let Response::Value(v2) = r else { continue };
            if resp(tm, P2, Inv::Write(X, v2 ^ 1)) != Response::Ok {
                continue;
            }
            match resp(tm, P2, Inv::TryCommit) {
                Response::Committed => {
                    commits.1 += 1;
                    break;
                }
                // The shield refused p2: give p1 its chance this round.
                Response::Aborted => break,
                _ => unreachable!(),
            }
        }
        if let Some(v) = v {
            if resp(tm, P1, Inv::Write(X, v ^ 1)) == Response::Ok
                && resp(tm, P1, Inv::TryCommit) == Response::Committed
            {
                commits.0 += 1;
            }
        }
    }
    commits
}

fn main() {
    let mut out = Outcome::new();

    section("1. The Algorithm 1 opening vs the shield (2000 rounds)");
    let mut plain = FgpTm::new(2, 1, FgpVariant::CpOnly);
    let (p1c, p2c) = adversary_rounds(&mut plain, 2_000);
    row(
        "fgp (no priorities)",
        format!("p1_commits={p1c} p2_commits={p2c}"),
    );
    out.check("plain fgp: p1 starves", p1c == 0 && p2c == 2_000);

    let mut shielded = Recorded::new(PriorityFgp::new(vec![2, 1], 1));
    let (p1c, p2c) = adversary_rounds(&mut shielded, 2_000);
    row(
        "priority-fgp (p1 ≻ p2)",
        format!("p1_commits={p1c} p2_commits={p2c}"),
    );
    out.check(
        "priority-fgp: p1 commits every round",
        p1c == 2_000 && p2c == 0,
    );
    out.check("priority-fgp: run is opaque", {
        let mut c = tm_safety::IncrementalChecker::new(tm_safety::Mode::Opacity);
        c.push_all(shielded.history().iter().copied()).is_ok()
    });

    section("2. Biased random schedules (p2 gets 50× the steps)");
    for (name, mut tm) in [
        (
            "fgp",
            Box::new(FgpTm::new(2, 1, FgpVariant::CpOnly)) as tm_stm::BoxedTm,
        ),
        ("priority-fgp", Box::new(PriorityFgp::new(vec![2, 1], 1))),
    ] {
        let mut clients = vec![
            Client::new(ClientScript::increment(X)),
            Client::new(ClientScript::increment(X)),
        ];
        let mut sched = WeightedScheduler::new(vec![1, 50], 0xC0FFEE);
        let report = simulate(
            tm.as_mut(),
            &mut clients,
            &mut sched,
            &FaultPlan::none(),
            SimConfig::steps(50_000).check_opacity(),
        );
        row(
            name,
            format!(
                "p1_commits={} p2_commits={} opacity={}",
                report.commits[0], report.commits[1], report.safety_ok
            ),
        );
        if name == "priority-fgp" {
            out.check(
                "priority-fgp: starved-of-steps p1 still commits whenever it runs",
                report.commits[0] > 100 && report.safety_ok,
            );
        }
    }

    section("3. The impossibility persists: faulty shield-holder");
    // p1 (top priority) opens a transaction and crashes; p2 keeps retrying.
    let mut tm = Recorded::new(PriorityFgp::new(vec![2, 1], 1));
    resp(&mut tm, P1, Inv::Read(X)); // p1 then crashes (never scheduled again)
    for _ in 0..2_000 {
        resp(&mut tm, P2, Inv::Write(X, 1));
        let r = resp(&mut tm, P2, Inv::TryCommit);
        assert_eq!(r, Response::Aborted, "the shield blocks p2 forever");
    }
    let lasso = detect_lasso(tm.history(), 3).expect("periodic run");
    let prio = PriorityProgress::new(vec![2, 1]);
    row(
        "classification",
        format!(
            "p1={} p2={} top_correct={:?} priority_progress={}",
            classify(&lasso, P1),
            classify(&lasso, P2),
            prio.top_correct(&lasso).map(|p| p.to_string()),
            prio.contains(&lasso)
        ),
    );
    out.check(
        "crashed shield-holder: p1 crashed, p2 (new top correct) starves",
        classify(&lasso, P1) == ProcessClass::Crashed
            && classify(&lasso, P2) == ProcessClass::Starving
            && !prio.contains(&lasso),
    );

    println!(
        "\nConclusion: priority progress escapes Theorem 2's hypotheses (it is\n\
         not biprogressing) and is achievable fault-free, but the same crash/\n\
         parasitic indistinguishability defeats it in fault-prone systems —\n\
         evidence for extending the paper's impossibility beyond biprogressing\n\
         properties (its §7 final open question)."
    );
    out.finish("EXT-PRIO");
}
