//! THM2/LEM1 — the generalized impossibility: for n = 2…8 processes, the
//! rotating-committers adversary produces runs in which **all n processes
//! are correct** yet only n−1 make progress — the Lemma 1 shape ("at least
//! two correct, at most one… " scaled out: one correct process can always
//! be denied) for every strictly-serializable-safe TM in the catalogue.
//!
//! Run: `cargo run -p bench --release --bin thm2_generalized [steps]`

use bench::{row, section, Outcome};
use tm_adversary::{run_game, GameConfig, RotatingStarver};
use tm_core::TVarId;
use tm_stm::nonblocking_catalog;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let x = TVarId(0);
    let mut out = Outcome::new();

    for n in 2..=8 {
        section(&format!("n = {n} processes ({steps} steps)"));
        for mut tm in nonblocking_catalog(n, 1) {
            let mut adversary = RotatingStarver::new(x, n);
            let report = run_game(
                tm.as_mut(),
                &mut adversary,
                GameConfig::steps(steps).check_strict_serializability(),
            );
            let progressing = report.commits.iter().filter(|&&c| c > 0).count();
            row(
                &report.tm_name,
                format!(
                    "victim_commits={} victim_aborts={} progressing={}/{} rounds={} ss_ok={}",
                    report.commits[0],
                    report.aborts[0],
                    progressing,
                    n,
                    report.rounds,
                    report.safety_ok
                ),
            );
            out.check(
                &format!(
                    "{} n={n}: exactly n-1 of n correct processes progress",
                    report.tm_name
                ),
                report.commits[0] == 0
                    && progressing == n - 1
                    && report.aborts[0] > 0
                    && report.safety_ok,
            );
        }
    }
    out.finish("THM2/LEM1");
}
