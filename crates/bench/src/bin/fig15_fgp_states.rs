//! FIG15 — Figure 15: the complete reachable state graph of `Fgp` for one
//! process and one binary t-variable. The paper lists exactly ten states
//! and notes the automaton has no abort events; this harness enumerates
//! the graph, prints every state in the paper's tuple notation and checks
//! both claims, for all three variants.
//!
//! Run: `cargo run -p bench --release --bin fig15_fgp_states`

use bench::{row, section, Outcome};
use tm_automata::{enumerate_states, Fgp, FgpState, FgpVariant, PStatus};

fn render_state(s: &FgpState) -> String {
    let status = match s.status(0) {
        PStatus::Clear => "c",
        PStatus::Doomed => "a",
    };
    let cp = if s.cp.contains(0) { "{p1}" } else { "∅" };
    let pending = match s.pending[0] {
        None => "⊥".to_string(),
        Some(inv) => inv.to_string(),
    };
    format!("({status}, {cp}, {}, f(p1)={pending})", s.val(0, 0))
}

fn main() {
    let mut out = Outcome::new();
    for variant in [FgpVariant::Literal, FgpVariant::Strict, FgpVariant::CpOnly] {
        section(&format!(
            "{variant:?} variant, P = {{p1}}, X = {{x}}, V = {{0,1}}"
        ));
        let graph = enumerate_states(&Fgp::new(1, 1, variant), &[0, 1], 1_000)
            .expect("ten states fit in any budget");
        for (i, s) in graph.states.iter().enumerate() {
            row(&format!("s{}", i + 1), render_state(s));
        }
        row("states", graph.state_count());
        row("edges", graph.edges.len());
        out.check(
            &format!("{variant:?}: exactly 10 states (paper Figure 15)"),
            graph.state_count() == 10,
        );
        out.check(
            &format!("{variant:?}: no abort events (paper's remark)"),
            !graph.has_abort_edges(),
        );
    }

    section("Scaling out: two processes (beyond the figure)");
    let graph =
        enumerate_states(&Fgp::new(2, 1, FgpVariant::CpOnly), &[0, 1], 1_000_000).expect("bounded");
    row("states (2 procs, 1 binary var)", graph.state_count());
    out.check("two-process graph has abort edges", graph.has_abort_edges());
    out.finish("FIG15");
}
