//! FIG3/FIG4 — Figures 3 and 4: the paper's safety verdict table.
//!
//! | history  | opaque | strictly serializable |
//! |----------|--------|-----------------------|
//! | Figure 1 | yes    | yes                   |
//! | Figure 3 | no     | no                    |
//! | Figure 4 | no     | yes                   |
//!
//! Run: `cargo run -p bench --release --bin fig03_fig04_verdicts`

use bench::{section, Outcome};
use tm_core::builder::figures;
use tm_safety::{check_opacity, check_strict_serializability};

fn main() {
    let mut out = Outcome::new();
    let table = [
        ("figure 1", figures::figure_1(), true, true),
        ("figure 3", figures::figure_3(), false, false),
        ("figure 4", figures::figure_4(), false, true),
    ];
    for (name, h, expect_opaque, expect_ss) in table {
        section(name);
        print!("{}", h.render_lanes());
        let opaque = check_opacity(&h).expect("small history").holds();
        let ss = check_strict_serializability(&h)
            .expect("small history")
            .holds();
        out.check(
            &format!("opaque = {expect_opaque}"),
            opaque == expect_opaque,
        );
        out.check(
            &format!("strictly serializable = {expect_ss}"),
            ss == expect_ss,
        );
    }

    section("Figure 8 (the adversary's would-be terminating history)");
    for v in [0, 3, 10] {
        let h = figures::figure_8(v);
        let opaque = check_opacity(&h).expect("small history").holds();
        let ss = check_strict_serializability(&h)
            .expect("small history")
            .holds();
        out.check(&format!("v = {v}: not opaque"), !opaque);
        out.check(&format!("v = {v}: not strictly serializable"), !ss);
    }
    out.finish("FIG3/FIG4");
}
