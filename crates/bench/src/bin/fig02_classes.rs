//! FIG2 — Figure 2: the process-class lattice. Classifies every process of
//! every infinite-history figure and validates each arrow of the lattice
//! (crashed → faulty, parasitic → faulty, starving → pending ∧ correct,
//! crashed → pending, …) over the whole corpus.
//!
//! Run: `cargo run -p bench --release --bin fig02_classes`

use bench::{row, section, Outcome};
use tm_liveness::{
    classify_all, figures, is_correct, is_crashed, is_faulty, is_parasitic, is_pending,
    is_starving, makes_progress,
};

fn main() {
    let mut out = Outcome::new();

    section("Per-figure classification");
    let named = [
        ("figure 5", figures::figure_5()),
        ("figure 6", figures::figure_6()),
        ("figure 7", figures::figure_7()),
        ("figure 9", figures::figure_9()),
        ("figure 10", figures::figure_10()),
        ("figure 12", figures::figure_12()),
        ("figure 13", figures::figure_13()),
        ("figure 14", figures::figure_14()),
    ];
    for (name, h) in &named {
        let classes: Vec<String> = classify_all(h)
            .into_iter()
            .map(|(p, c)| format!("{p}:{c}"))
            .collect();
        row(name, classes.join("  "));
    }

    section("Lattice arrows over the corpus");
    let corpus = figures::all_figures();
    let mut crashed_faulty = true;
    let mut parasitic_faulty = true;
    let mut crashed_pending = true;
    let mut starving_pending_correct = true;
    let mut progress_correct_not_pending = true;
    let mut crashed_xor_parasitic = true;
    for h in &corpus {
        for p in h.processes() {
            if is_crashed(h, p) && !is_faulty(h, p) {
                crashed_faulty = false;
            }
            if is_parasitic(h, p) && !is_faulty(h, p) {
                parasitic_faulty = false;
            }
            if is_crashed(h, p) && !is_pending(h, p) {
                crashed_pending = false;
            }
            if is_starving(h, p) && !(is_pending(h, p) && is_correct(h, p)) {
                starving_pending_correct = false;
            }
            if makes_progress(h, p) && (!is_correct(h, p) || is_pending(h, p)) {
                progress_correct_not_pending = false;
            }
            if is_crashed(h, p) && is_parasitic(h, p) {
                crashed_xor_parasitic = false;
            }
        }
    }
    out.check("crashed → faulty", crashed_faulty);
    out.check("parasitic → faulty", parasitic_faulty);
    out.check("crashed → pending", crashed_pending);
    out.check("starving → pending ∧ correct", starving_pending_correct);
    out.check(
        "makes-progress → correct ∧ ¬pending",
        progress_correct_not_pending,
    );
    out.check("crashed and parasitic are disjoint", crashed_xor_parasitic);
    out.finish("FIG2");
}
