//! ABL1 — ablation: the global-lock TM (the paper's §1.1/§3.2.1 example).
//!
//! Without faults it ensures local progress (everyone commits, nobody
//! aborts — the possibility half of §3.2.1). Inject a single crash while
//! the lock is held and **every other process commits exactly zero
//! transactions afterwards** — the Amdahl's-law argument of footnote 1.
//! For contrast, every non-blocking TM in the catalogue sails through the
//! same fault.
//!
//! Run: `cargo run -p bench --release --bin abl1_global_lock_crash [steps]`

use bench::{row, section, Outcome};
use tm_core::{ProcessId, TVarId};
use tm_sim::{simulate, Client, ClientScript, FaultPlan, RoundRobin, SimConfig};
use tm_stm::{nonblocking_catalog, GlobalLock};

const X: TVarId = TVarId(0);

fn clients(n: usize) -> Vec<Client> {
    (0..n)
        .map(|_| Client::new(ClientScript::increment(X)))
        .collect()
}

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let n = 4;
    let mut out = Outcome::new();

    section("Fault-free: the global lock gives local progress");
    let mut tm = GlobalLock::new(n, 1);
    let mut cs = clients(n);
    let report = simulate(
        &mut tm,
        &mut cs,
        &mut RoundRobin::new(),
        &FaultPlan::none(),
        SimConfig::steps(steps).check_opacity(),
    );
    row("commits per process", format!("{:?}", report.commits));
    out.check(
        "everyone commits, nobody aborts",
        report.commits.iter().all(|&c| c > 100) && report.aborts.iter().all(|&a| a == 0),
    );
    out.check("opacity holds", report.safety_ok);

    section("One crash while holding the lock");
    let faults = FaultPlan::none().crash(ProcessId(0), 5);
    let mut tm = GlobalLock::new(n, 1);
    let mut cs = clients(n);
    let report = simulate(
        &mut tm,
        &mut cs,
        &mut RoundRobin::new(),
        &faults,
        SimConfig::steps(steps),
    );
    let commits_after_crash = report.commit_log.iter().filter(|&&(s, _)| s >= 5).count();
    row("commits after the crash", commits_after_crash);
    row("total stalled polls", report.stalls.iter().sum::<usize>());
    out.check(
        "zero commits by anyone after the crash",
        commits_after_crash == 0,
    );

    section("Every non-blocking TM under the same crash");
    // §3.2.3: deferred-update TMs (TL2, NOrec, OSTM, Fgp) shrug the crash
    // off; DSTM's aggressive contention manager *steals* the dead writer's
    // ownership; TinySTM's encounter-time lock is orphaned and its timid
    // contention manager can only abort itself — survivors starve.
    for mut tm in nonblocking_catalog(n, 1) {
        let mut cs = clients(n);
        let report = simulate(
            tm.as_mut(),
            &mut cs,
            &mut RoundRobin::new(),
            &faults,
            SimConfig::steps(steps).check_opacity(),
        );
        let survivors: usize = report.commits.iter().skip(1).sum();
        row(
            report.tm_name.as_str(),
            format!("survivor_commits={survivors} opacity={}", report.safety_ok),
        );
        // TinySTM and SwissTM hold encounter-time write locks; a crashed
        // holder orphans them and conflicting survivors starve (§3.2.3).
        let expect_starved = report.tm_name == "tinystm" || report.tm_name == "swisstm";
        out.check(
            &format!(
                "{}: survivors {} after the crash",
                report.tm_name,
                if expect_starved {
                    "starve behind the orphaned encounter-time lock"
                } else {
                    "keep committing"
                }
            ),
            report.safety_ok
                && if expect_starved {
                    survivors == 0
                } else {
                    survivors > 100
                },
        );
    }
    out.finish("ABL1");
}
