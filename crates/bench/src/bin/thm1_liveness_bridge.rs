//! THM1-BRIDGE — closing the loop between Theorem 1's game and the formal
//! liveness definitions of §3.
//!
//! The binary-domain Algorithm 1/2 adversaries produce *eventually
//! periodic* runs against deterministic TMs; the lasso detector recovers
//! the `prefix · cycle^ω` infinite history the game would produce if run
//! forever, and the §3 machinery classifies it:
//!
//! * `p1` is **starving** (correct: infinitely many aborts; pending),
//! * `p2` is **progressing** (commits infinitely often),
//! * the history **violates local progress** and **satisfies global
//!   progress** —
//!
//! exactly the conclusion of Theorem 1, derived mechanically from an
//! executed run of each TM rather than from a pencil-and-paper argument.
//!
//! Run: `cargo run -p bench --release --bin thm1_liveness_bridge [rounds]`

use bench::{row, section, Outcome};
use tm_adversary::{run_game, Algorithm1, Algorithm2, GameConfig, Strategy};
use tm_core::{Invocation, ProcessId, Response, TVarId};
use tm_liveness::{
    classify, detect_lasso, GlobalProgress, LocalProgress, ProcessClass, TmLivenessProperty,
};
use tm_stm::{nonblocking_catalog, Outcome as TmOutcome, Recorded, SteppedTm};

const P1: ProcessId = ProcessId(0);
const P2: ProcessId = ProcessId(1);
const X: TVarId = TVarId(0);

/// `Recorded` needs a sized TM; adapt the boxed catalogue entries.
struct FatBox(tm_stm::BoxedTm);

impl SteppedTm for FatBox {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn process_count(&self) -> usize {
        self.0.process_count()
    }
    fn tvar_count(&self) -> usize {
        self.0.tvar_count()
    }
    fn invoke(&mut self, p: ProcessId, inv: Invocation) -> TmOutcome {
        self.0.invoke(p, inv)
    }
    fn poll(&mut self, p: ProcessId) -> Option<Response> {
        self.0.poll(p)
    }
    fn has_pending(&self, p: ProcessId) -> bool {
        self.0.has_pending(p)
    }
    fn fork(&self) -> tm_stm::BoxedTm {
        Box::new(FatBox(self.0.fork()))
    }
}

fn bridge(out: &mut Outcome, tm: tm_stm::BoxedTm, mut strategy: Box<dyn Strategy>, steps: usize) {
    let mut recorded = Recorded::new(FatBox(tm));
    let report = run_game(&mut recorded, strategy.as_mut(), GameConfig::steps(steps));
    let name = report.tm_name.clone();
    let Some(lasso) = detect_lasso(recorded.history(), 3) else {
        out.check(&format!("{name}: run is eventually periodic"), false);
        return;
    };
    let c1 = classify(&lasso, P1);
    let c2 = classify(&lasso, P2);
    let local = LocalProgress.contains(&lasso);
    let global = GlobalProgress.contains(&lasso);
    row(
        &name,
        format!(
            "cycle={} events  p1={c1}  p2={c2}  local={local}  global={global}",
            lasso.cycle().len()
        ),
    );
    out.check(
        &format!("{name}: starvation formally classified"),
        c1 == ProcessClass::Starving && c2 == ProcessClass::Progressing && !local && global,
    );
}

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let mut out = Outcome::new();

    section("Algorithm 1 (binary domain) → lasso → §3 classification");
    for tm in nonblocking_catalog(2, 1) {
        bridge(&mut out, tm, Box::new(Algorithm1::binary(X)), steps);
    }

    section("Algorithm 2 (binary domain) → lasso → §3 classification");
    for tm in nonblocking_catalog(2, 1) {
        bridge(&mut out, tm, Box::new(Algorithm2::binary(X)), steps);
    }

    println!(
        "\nEvery opaque TM's actual execution under the adversary is, formally,\n\
         an infinite history in which a correct process starves: local progress\n\
         is violated while global progress holds — Theorem 1, mechanically."
    );
    out.finish("THM1-BRIDGE");
}
