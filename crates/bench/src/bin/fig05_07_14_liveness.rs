//! FIG5/FIG6/FIG7/FIG14 — the TM-liveness property examples of §3.2 and
//! the nonblocking/biprogressing classes of §5.1.
//!
//! Expected table (paper §3.2, §5.1):
//!
//! | history   | local | global | solo | nonblocking-cond | biprogressing-cond |
//! |-----------|-------|--------|------|------------------|--------------------|
//! | figure 5  | yes   | yes    | yes  | yes              | yes                |
//! | figure 6  | no    | yes    | yes  | yes              | no                 |
//! | figure 7  | yes   | yes    | yes  | yes              | yes                |
//! | figure 14 | no    | no     | no   | no               | yes                |
//!
//! Run: `cargo run -p bench --release --bin fig05_07_14_liveness`

use bench::{row, section, Outcome};
use tm_liveness::{figures, meta, GlobalProgress, LocalProgress, SoloProgress, TmLivenessProperty};

fn main() {
    let mut out = Outcome::new();
    section("Per-history property membership");
    // (name, history, local, global, solo, nonblocking-cond, biprogressing-cond)
    let expected = [
        (
            "figure 5",
            figures::figure_5(),
            true,
            true,
            true,
            true,
            true,
        ),
        (
            "figure 6",
            figures::figure_6(),
            false,
            true,
            true,
            true,
            false,
        ),
        (
            "figure 7",
            figures::figure_7(),
            true,
            true,
            true,
            true,
            true,
        ),
        (
            "figure 14",
            figures::figure_14(),
            false,
            false,
            false,
            false,
            true,
        ),
    ];
    for (name, h, local, global, solo, nb, bp) in &expected {
        row(
            name,
            format!(
                "local={} global={} solo={} nonblocking-cond={} biprogressing-cond={}",
                LocalProgress.contains(h),
                GlobalProgress.contains(h),
                SoloProgress.contains(h),
                meta::satisfies_nonblocking_condition(h),
                meta::satisfies_biprogressing_condition(h),
            ),
        );
        out.check(
            &format!("{name} matches the paper"),
            LocalProgress.contains(h) == *local
                && GlobalProgress.contains(h) == *global
                && SoloProgress.contains(h) == *solo
                && meta::satisfies_nonblocking_condition(h) == *nb
                && meta::satisfies_biprogressing_condition(h) == *bp,
        );
    }

    section("Property classes over the figure corpus (§5.1)");
    let corpus = figures::all_figures();
    out.check(
        "local progress is nonblocking",
        meta::nonblocking_counterexample(&LocalProgress, &corpus).is_none(),
    );
    out.check(
        "local progress is biprogressing",
        meta::biprogressing_counterexample(&LocalProgress, &corpus).is_none(),
    );
    out.check(
        "global progress is NOT biprogressing (figure 6 refutes)",
        meta::biprogressing_counterexample(&GlobalProgress, &corpus).is_some(),
    );
    out.check(
        "solo progress is nonblocking",
        meta::nonblocking_counterexample(&SoloProgress, &corpus).is_none(),
    );
    out.check(
        "solo progress is NOT biprogressing (figure 6 refutes)",
        meta::biprogressing_counterexample(&SoloProgress, &corpus).is_some(),
    );
    out.check(
        "every example property contains L_local (Definition 1)",
        meta::weakening_counterexample(&GlobalProgress, &corpus).is_none()
            && meta::weakening_counterexample(&SoloProgress, &corpus).is_none(),
    );
    out.finish("FIG5/6/7/14");
}
