//! FIG1 — Figure 1: the scenario illustrating the difficulty of local
//! progress. The two-process pattern (p1 reads, p2 commits a conflicting
//! write, p1 must abort) repeats k times; every prefix is opaque and T1
//! never commits.
//!
//! Run: `cargo run -p bench --release --bin fig01_scenario`

use bench::{row, section, Outcome};
use tm_core::{builder::figures, HistoryBuilder, ProcessId, TVarId};
use tm_safety::{is_opaque, is_strictly_serializable, IncrementalChecker, Mode};

fn main() {
    let mut out = Outcome::new();
    section("Figure 1: the base scenario");
    let h = figures::figure_1();
    print!("{}", h.render_lanes());
    out.check("history is opaque", is_opaque(&h));
    out.check(
        "history is strictly serializable",
        is_strictly_serializable(&h),
    );
    out.check("T1 aborted, T2 committed", {
        h.commit_count(ProcessId(0)) == 0 && h.commit_count(ProcessId(1)) == 1
    });

    section("The scenario repeated k times (paper: 'can repeat infinitely')");
    let (p1, p2, x) = (ProcessId(0), ProcessId(1), TVarId(0));
    for k in [10u64, 100, 1_000, 10_000] {
        let mut b = HistoryBuilder::new();
        for v in 0..k {
            b.read(p1, x, v)
                .read(p2, x, v)
                .write_ok(p2, x, v + 1)
                .commit(p2)
                .write_ok(p1, x, v + 1)
                .abort_on_try_commit(p1);
        }
        let h = b.build().expect("well-formed");
        let mut checker = IncrementalChecker::new(Mode::Opacity);
        let opaque = checker.push_all(h.iter().copied()).is_ok();
        row(
            &format!("k = {k}"),
            format!(
                "events={} p1_commits={} p2_commits={} every-prefix-opaque={}",
                h.len(),
                h.commit_count(p1),
                h.commit_count(p2),
                opaque
            ),
        );
        if h.commit_count(p1) != 0 || !opaque {
            out.check(&format!("k = {k} starvation + opacity"), false);
        }
    }
    out.check("T1 starves at every repetition count", true);
    out.finish("FIG1");
}
