//! ABL2 — ablation: obstruction freedom (DSTM-style, aggressive contention
//! manager) vs lock-free commit ordering (OSTM-style).
//!
//! The paper (§3.2.3) credits obstruction-free TMs with solo progress in
//! parasitic-free systems — but obstruction freedom allows **livelock**
//! when transactions contend: under the alternating-steal schedule both
//! writers doom each other forever on DSTM, while OSTM (first committer
//! wins, nobody is ever doomed mid-flight) keeps one side committing, and
//! Fgp does too. Running alone, all of them commit every transaction.
//!
//! Run: `cargo run -p bench --release --bin abl2_obstruction_freedom [rounds]`

use bench::{row, section, Outcome};
use tm_core::{Invocation as Inv, ProcessId, Response, TVarId};
use tm_stm::{Dstm, FgpTm, Ostm, SteppedTm};

const P1: ProcessId = ProcessId(0);
const P2: ProcessId = ProcessId(1);
const X: TVarId = TVarId(0);

fn resp(tm: &mut dyn SteppedTm, p: ProcessId, inv: Inv) -> Response {
    tm.invoke(p, inv).response().expect("non-blocking TM")
}

/// The adversarial alternating-steal schedule: each process writes (which
/// on DSTM steals ownership and dooms the other) before the other's commit
/// attempt. Returns total commits of both processes.
fn alternating_steal(tm: &mut dyn SteppedTm, rounds: usize) -> (usize, usize) {
    let mut commits = (0, 0);
    let _ = resp(tm, P1, Inv::Write(X, 1));
    let _ = resp(tm, P2, Inv::Write(X, 2));
    for _ in 0..rounds {
        if resp(tm, P1, Inv::TryCommit) == Response::Committed {
            commits.0 += 1;
        }
        let _ = resp(tm, P1, Inv::Write(X, 1));
        if resp(tm, P2, Inv::TryCommit) == Response::Committed {
            commits.1 += 1;
        }
        let _ = resp(tm, P2, Inv::Write(X, 2));
    }
    commits
}

/// Solo run: one process repeatedly increments, alone.
fn solo(tm: &mut dyn SteppedTm, rounds: usize) -> usize {
    let mut commits = 0;
    let mut v = 0u64;
    for _ in 0..rounds {
        if resp(tm, P1, Inv::Read(X)) == Response::Value(v) {
            let _ = resp(tm, P1, Inv::Write(X, v + 1));
            if resp(tm, P1, Inv::TryCommit) == Response::Committed {
                commits += 1;
                v += 1;
            }
        }
    }
    commits
}

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let mut out = Outcome::new();

    section(&format!("Alternating-steal contention ({rounds} rounds)"));
    let mut dstm = Dstm::new(2, 1);
    let (a, b) = alternating_steal(&mut dstm, rounds);
    row(
        "dstm (obstruction-free, aggressive CM)",
        format!("p1={a} p2={b} — livelock"),
    );
    out.check("dstm livelocks (zero commits)", a == 0 && b == 0);

    let mut ostm = Ostm::new(2, 1);
    let (a, b) = alternating_steal(&mut ostm, rounds);
    row("ostm (lock-free)", format!("p1={a} p2={b}"));
    out.check("ostm: somebody keeps committing", a + b > rounds / 2);

    let mut fgp = FgpTm::new(2, 1, tm_automata::FgpVariant::CpOnly);
    let (a, b) = alternating_steal(&mut fgp, rounds);
    row("fgp (global progress)", format!("p1={a} p2={b}"));
    out.check("fgp: somebody keeps committing", a + b > rounds / 2);

    section(&format!("Solo execution ({rounds} transactions)"));
    for (name, commits) in [
        ("dstm", solo(&mut Dstm::new(2, 1), rounds)),
        ("ostm", solo(&mut Ostm::new(2, 1), rounds)),
        (
            "fgp",
            solo(
                &mut FgpTm::new(2, 1, tm_automata::FgpVariant::CpOnly),
                rounds,
            ),
        ),
    ] {
        row(name, format!("{commits}/{rounds} committed"));
        out.check(
            &format!("{name}: solo progress (every transaction commits)"),
            commits == rounds,
        );
    }
    out.finish("ABL2");
}
