//! THM1/ALG2 — Theorem 1 with Algorithm 2 (crash-free systems,
//! parasitic-flavoured environment): `p1` re-reads at every round (it
//! never crashes), yet every opaque TM starves it forever while `p2`
//! commits every round.
//!
//! Run: `cargo run -p bench --release --bin thm1_algorithm2 [steps]`

use bench::{row, section, Outcome};
use tm_adversary::{run_game, Algorithm2, GameConfig};
use tm_core::{ProcessId, TVarId};
use tm_stm::{nonblocking_catalog, Recorded, Tl2};

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let x = TVarId(0);
    let mut out = Outcome::new();

    section(&format!("Algorithm 2 vs the catalogue ({steps} steps)"));
    for mut tm in nonblocking_catalog(2, 1) {
        let mut adversary = Algorithm2::new(x);
        let report = run_game(
            tm.as_mut(),
            &mut adversary,
            GameConfig::steps(steps).check_opacity(),
        );
        row("", report.row());
        out.check(
            &format!(
                "{}: p1 starves, p2 progresses, opacity holds",
                report.tm_name
            ),
            report.commits[0] == 0
                && report.commits[1] > 0
                && !report.terminated
                && report.safety_ok,
        );
    }

    section("Crash-freeness of the run (p1 keeps taking steps)");
    let mut tm = Recorded::new(Tl2::new(2, 1));
    let mut adversary = Algorithm2::new(x);
    let report = run_game(&mut tm, &mut adversary, GameConfig::steps(steps));
    let p1_events = tm.history().project(ProcessId(0)).len();
    let p2_events = tm.history().project(ProcessId(1)).len();
    row("p1 events", p1_events);
    row("p2 events", p2_events);
    row(
        "p1/p2 activity ratio",
        format!("{:.2}", p1_events as f64 / p2_events as f64),
    );
    out.check(
        "p1 stays active forever (> 20% of p2's events)",
        p1_events * 5 > p2_events,
    );
    out.check("p1 still starves", report.commits[0] == 0);
    out.finish("THM1/ALG2");
}
