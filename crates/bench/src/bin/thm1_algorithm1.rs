//! THM1/ALG1 — Theorem 1 with Algorithm 1 (parasitic-free systems,
//! crash-flavoured environment): for every opaque TM in the catalogue the
//! adversary starves `p1` forever while `p2` commits every round and every
//! prefix of the history stays opaque. The global-lock TM "escapes" by
//! blocking everyone — which is exactly why it cannot ensure progress in a
//! crash-prone world.
//!
//! Also regenerates the Figure 8 argument: the would-be terminating
//! history is not opaque.
//!
//! Run: `cargo run -p bench --release --bin thm1_algorithm1 [steps]`

use bench::{row, section, Outcome};
use tm_adversary::{run_game, Algorithm1, GameConfig};
use tm_core::{builder::figures, TVarId};
use tm_safety::is_opaque;
use tm_stm::{nonblocking_catalog, GlobalLock};

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let x = TVarId(0);
    let mut out = Outcome::new();

    section("Figure 8: the terminating history is not opaque");
    out.check(
        "figure 8 violates opacity",
        !is_opaque(&figures::figure_8(0)),
    );

    section(&format!("Algorithm 1 vs the catalogue ({steps} steps)"));
    for mut tm in nonblocking_catalog(2, 1) {
        let mut adversary = Algorithm1::new(x);
        let report = run_game(
            tm.as_mut(),
            &mut adversary,
            GameConfig::steps(steps).check_opacity(),
        );
        row("", report.row());
        out.check(
            &format!(
                "{}: p1 starves, p2 progresses, opacity holds",
                report.tm_name
            ),
            report.commits[0] == 0
                && report.commits[1] > 0
                && !report.terminated
                && report.safety_ok,
        );
    }

    section("Global-lock TM: blocks instead of aborting");
    let mut tm = GlobalLock::new(2, 1);
    let mut adversary = Algorithm1::new(x);
    let report = run_game(&mut tm, &mut adversary, GameConfig::steps(steps));
    row("", report.row());
    out.check(
        "global-lock: nobody commits, p2 stalls forever",
        report.commits == vec![0, 0] && report.stalled_steps > steps / 2,
    );

    section("The literal Fgp variant violates opacity under attack");
    let mut tm = tm_stm::literal_fgp(2, 1);
    let mut adversary = Algorithm1::with_victim_offset(x, 2);
    let report = run_game(
        tm.as_mut(),
        &mut adversary,
        GameConfig::steps(steps).check_opacity(),
    );
    row("", report.row());
    row(
        "violation",
        report
            .safety_violation
            .as_deref()
            .unwrap_or("none detected"),
    );
    out.check("fgp-literal: opacity violation detected", !report.safety_ok);

    out.finish("THM1/ALG1");
}
